"""Unit tests for the full chain simulator (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.analysis.absolute import Scenario
from repro.chain.block import MinerKind
from repro.chain.validation import validate_tree
from repro.params import MiningParams
from repro.rewards.schedule import EthereumByzantiumSchedule
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import ChainSimulator, RaceState
from repro.errors import SimulationError


def config(alpha=0.3, gamma=0.5, blocks=4000, seed=1, **kwargs) -> SimulationConfig:
    return SimulationConfig(
        params=MiningParams(alpha=alpha, gamma=gamma),
        schedule=EthereumByzantiumSchedule(),
        num_blocks=blocks,
        seed=seed,
        **kwargs,
    )


class TestRaceState:
    def test_initial_lengths(self):
        race = RaceState(root_id=0)
        assert race.private_length == 0
        assert race.public_length == 0
        assert race.pool_tip() == 0
        assert race.honest_tip() == 0
        assert race.pool_published_tip() == 0

    def test_invariant_violation_detected(self):
        race = RaceState(root_id=0, pool_branch=[1], published_count=1, honest_branch=[])
        with pytest.raises(SimulationError):
            race.check_invariants()

    def test_published_count_cannot_exceed_branch(self):
        race = RaceState(root_id=0, pool_branch=[1], published_count=2, honest_branch=[2, 3])
        with pytest.raises(SimulationError):
            race.check_invariants()


class TestDeterminismAndStructure:
    def test_same_seed_reproduces_the_same_tree(self):
        first = ChainSimulator(config(seed=5)).run()
        second = ChainSimulator(config(seed=5)).run()
        assert first.pool_rewards.isclose(second.pool_rewards)
        assert first.regular_blocks == second.regular_blocks
        assert first.uncle_blocks == second.uncle_blocks

    def test_different_seeds_differ(self):
        first = ChainSimulator(config(seed=5)).run()
        second = ChainSimulator(config(seed=6)).run()
        assert first.pool_rewards.total != pytest.approx(second.pool_rewards.total, abs=1e-12)

    def test_every_mined_block_is_accounted_for(self):
        result = ChainSimulator(config()).run()
        assert result.total_blocks == result.config.num_blocks
        assert result.regular_blocks + result.uncle_blocks + result.stale_blocks == pytest.approx(
            result.total_blocks
        )

    def test_final_tree_passes_structural_validation(self):
        simulator = ChainSimulator(config(blocks=2500))
        simulator.run()
        validate_tree(simulator.tree)

    def test_num_events_matches_block_count(self):
        result = ChainSimulator(config(blocks=1000)).run()
        assert result.num_events == 1000


class TestStrategyBehaviour:
    def test_all_honest_when_alpha_zero(self):
        result = ChainSimulator(config(alpha=0.0, blocks=1500)).run()
        assert result.pool_rewards.total == 0.0
        assert result.stale_blocks == 0
        assert result.uncle_blocks == 0
        assert result.regular_blocks == result.total_blocks

    def test_honest_mode_produces_no_forks(self):
        result = ChainSimulator(config(blocks=1500, strategy="honest")).run()
        assert result.stale_blocks == 0
        assert result.uncle_blocks == 0
        assert result.relative_pool_revenue == pytest.approx(0.3, abs=0.05)

    def test_selfish_mode_produces_forks(self):
        result = ChainSimulator(config(alpha=0.35, blocks=4000)).run()
        assert result.uncle_blocks > 0
        assert result.stale_blocks >= 0
        assert result.regular_blocks < result.total_blocks

    def test_large_pool_earns_more_than_fair_share(self):
        result = ChainSimulator(config(alpha=0.4, blocks=20_000)).run()
        assert result.pool_absolute_revenue(Scenario.REGULAR_ONLY) > 0.4

    def test_small_pool_earns_less_than_fair_share_without_uncle_rewards(self):
        # Under the Ethereum schedule the scenario-1 threshold is only ~0.054, so a
        # clearly unprofitable example needs the Bitcoin-style schedule (threshold
        # 0.25 at gamma = 0.5), where a 15% pool loses a large fraction of its income.
        from repro.rewards.schedule import BitcoinSchedule

        bitcoin_config = SimulationConfig(
            params=MiningParams(alpha=0.15, gamma=0.5),
            schedule=BitcoinSchedule(),
            num_blocks=20_000,
            seed=1,
        )
        result = ChainSimulator(bitcoin_config).run()
        # The Eyal-Sirer relative revenue at alpha=0.15, gamma=0.5 is ~0.123 < 0.15.
        assert result.pool_absolute_revenue(Scenario.REGULAR_ONLY) < 0.14

    def test_gamma_one_still_wastes_no_pool_blocks(self):
        # With gamma = 1 every honest tie-break helps the pool; the pool should lose
        # (essentially) no blocks and earn more than its share.
        result = ChainSimulator(config(alpha=0.3, gamma=1.0, blocks=15_000)).run()
        pool_blocks_lost = result.pool_uncle_blocks
        assert pool_blocks_lost / result.total_blocks < 0.01
        assert result.pool_absolute_revenue(Scenario.REGULAR_ONLY) > 0.3

    def test_pool_uncles_are_all_at_distance_one(self):
        result = ChainSimulator(config(alpha=0.35, blocks=10_000)).run()
        distances = set(result.pool_uncle_distance_counts)
        assert distances <= {1}

    def test_uncle_references_capped_by_config(self):
        simulator = ChainSimulator(config(blocks=3000, max_uncles_per_block=1))
        simulator.run()
        assert all(len(block.uncle_ids) <= 1 for block in simulator.tree.blocks())

    def test_no_uncle_references_when_disabled(self):
        simulator = ChainSimulator(config(blocks=2000, max_uncles_per_block=0))
        result = simulator.run()
        assert all(len(block.uncle_ids) == 0 for block in simulator.tree.blocks())
        assert result.uncle_blocks == 0

    def test_warmup_blocks_reduce_accounted_totals(self):
        full = ChainSimulator(config(blocks=3000, warmup_blocks=0, seed=9)).run()
        trimmed = ChainSimulator(config(blocks=3000, warmup_blocks=500, seed=9)).run()
        assert trimmed.total_blocks < full.total_blocks


class TestStepwiseExecution:
    def test_manual_stepping_matches_run(self):
        auto = ChainSimulator(config(blocks=800, seed=3)).run()
        manual_simulator = ChainSimulator(config(blocks=800, seed=3))
        for _ in range(800):
            manual_simulator.step()
        manual_simulator.finalise()
        settlement = manual_simulator.settle()
        assert settlement.split.pool.total == pytest.approx(auto.pool_rewards.total)
        assert settlement.regular_blocks == auto.regular_blocks

    def test_race_invariants_hold_after_every_step(self):
        simulator = ChainSimulator(config(blocks=400, seed=13))
        for _ in range(400):
            simulator.step()
            assert simulator.race.published_count == len(simulator.race.honest_branch)

    def test_tree_records_pool_and_honest_blocks(self):
        simulator = ChainSimulator(config(alpha=0.4, blocks=2000, seed=2))
        simulator.run()
        counts = simulator.tree.count_by_miner()
        assert counts[MinerKind.POOL] + counts[MinerKind.HONEST] == 2000
        assert counts[MinerKind.POOL] == pytest.approx(0.4 * 2000, rel=0.15)
