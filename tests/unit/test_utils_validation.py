"""Unit tests for validation helpers."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.utils.validation import require, require_positive, require_probability


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_on_false_with_message(self):
        with pytest.raises(ParameterError, match="broken invariant"):
            require(False, "broken invariant")


class TestRequireProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_probabilities(self, value):
        assert require_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, float("nan")])
    def test_rejects_non_probabilities(self, value):
        with pytest.raises(ParameterError):
            require_probability("p", value)

    def test_returns_float(self):
        assert isinstance(require_probability("p", 1), float)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive("x", 2) == 2.0

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ParameterError):
            require_positive("x", value)
