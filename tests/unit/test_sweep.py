"""Unit tests for the parameter-sweep helpers."""

from __future__ import annotations

import pytest

from repro.analysis.absolute import Scenario
from repro.analysis.sweep import AlphaSweep, alpha_grid, gamma_grid, sweep_alpha, sweep_gamma
from repro.rewards.schedule import FlatUncleSchedule


class TestGrids:
    def test_alpha_grid_covers_the_paper_axis(self):
        grid = alpha_grid(0.0, 0.45, 0.05)
        assert len(grid) == 10
        assert grid[-1] == pytest.approx(0.45)

    def test_alpha_grid_avoids_exact_zero(self):
        assert alpha_grid(0.0, 0.1, 0.05)[0] > 0.0

    def test_alpha_grid_rejects_bad_step(self):
        with pytest.raises(ValueError):
            alpha_grid(0.0, 0.4, 0.0)

    def test_gamma_grid_covers_zero_to_one(self):
        grid = gamma_grid(0.0, 1.0, 0.25)
        assert grid == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])

    def test_gamma_grid_rejects_bad_step(self):
        with pytest.raises(ValueError):
            gamma_grid(0.0, 1.0, -0.5)


class TestAlphaSweep:
    @pytest.fixture(scope="class")
    def sweep(self) -> AlphaSweep:
        return sweep_alpha(
            [0.1, 0.2, 0.3, 0.4],
            gamma=0.5,
            schedule=FlatUncleSchedule(0.5),
            scenario=Scenario.REGULAR_ONLY,
            max_lead=30,
        )

    def test_one_point_per_alpha(self, sweep):
        assert sweep.alphas == pytest.approx([0.1, 0.2, 0.3, 0.4])
        assert len(sweep.points) == 4

    def test_pool_revenue_increases_with_alpha(self, sweep):
        values = sweep.pool_absolute
        assert values == sorted(values)

    def test_honest_revenue_decreases_with_alpha(self, sweep):
        values = sweep.honest_absolute
        assert values == sorted(values, reverse=True)

    def test_totals_are_sum_of_parties(self, sweep):
        for point in sweep.points:
            assert point.total_absolute == pytest.approx(point.pool_absolute + point.honest_absolute)

    def test_crossover_close_to_paper_threshold(self, sweep):
        # With the 0.1 grid the first profitable point is 0.2 (threshold is 0.163).
        assert sweep.crossover_alpha() == pytest.approx(0.2)

    def test_metadata(self, sweep):
        assert sweep.gamma == 0.5
        assert sweep.scenario is Scenario.REGULAR_ONLY
        assert sweep.schedule_name == "FlatUncleSchedule"


class TestGammaSweep:
    def test_thresholds_decrease_with_gamma(self):
        result = sweep_gamma([0.0, 0.5, 1.0], schedule=FlatUncleSchedule(0.5), max_lead=25)
        assert result.gammas == [0.0, 0.5, 1.0]
        thresholds = result.thresholds
        assert thresholds[0] > thresholds[1] > thresholds[2]
        assert thresholds[2] == pytest.approx(0.0)

    def test_schedule_name_recorded(self):
        result = sweep_gamma([0.5], schedule=FlatUncleSchedule(0.5), max_lead=25)
        assert result.schedule_name == "FlatUncleSchedule"
