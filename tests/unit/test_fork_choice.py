"""Unit tests for the fork-choice rules."""

from __future__ import annotations

import pytest

from repro.chain.block import GENESIS_ID, MinerKind
from repro.chain.blocktree import BlockTree
from repro.chain.fork_choice import GhostRule, LongestChainRule
from repro.errors import ChainStructureError


def linear(tree: BlockTree, parent: int, length: int, miner=MinerKind.HONEST, published=True):
    blocks = []
    for index in range(length):
        block = tree.add_block(parent, miner, created_at=len(tree) + index, published=published)
        blocks.append(block)
        parent = block.block_id
    return blocks


class TestLongestChainRule:
    def test_single_chain_tip(self):
        tree = BlockTree()
        blocks = linear(tree, GENESIS_ID, 3)
        tips = LongestChainRule().best_tips(tree)
        assert [tip.block_id for tip in tips] == [blocks[-1].block_id]

    def test_longer_branch_wins(self):
        tree = BlockTree()
        short = linear(tree, GENESIS_ID, 2)
        long = linear(tree, GENESIS_ID, 3, MinerKind.POOL)
        tips = LongestChainRule().best_tips(tree)
        assert [tip.block_id for tip in tips] == [long[-1].block_id]
        assert short[-1].block_id not in {tip.block_id for tip in tips}

    def test_equal_branches_both_returned(self):
        tree = BlockTree()
        first = linear(tree, GENESIS_ID, 2)
        second = linear(tree, GENESIS_ID, 2, MinerKind.POOL)
        tips = LongestChainRule().best_tips(tree)
        assert {tip.block_id for tip in tips} == {first[-1].block_id, second[-1].block_id}

    def test_best_tip_breaks_ties_by_creation_order(self):
        tree = BlockTree()
        first = linear(tree, GENESIS_ID, 2)
        linear(tree, GENESIS_ID, 2, MinerKind.POOL)
        assert LongestChainRule().best_tip(tree).block_id == first[-1].block_id

    def test_published_only_ignores_withheld_branch(self):
        tree = BlockTree()
        public = linear(tree, GENESIS_ID, 2)
        linear(tree, GENESIS_ID, 4, MinerKind.POOL, published=False)
        tips = LongestChainRule().best_tips(tree, published_only=True)
        assert [tip.block_id for tip in tips] == [public[-1].block_id]

    def test_genesis_only_tree(self):
        tree = BlockTree()
        assert LongestChainRule().best_tip(tree).block_id == GENESIS_ID


class TestGhostRule:
    def test_agrees_with_longest_chain_on_a_single_chain(self):
        tree = BlockTree()
        blocks = linear(tree, GENESIS_ID, 4)
        assert GhostRule().best_tip(tree).block_id == blocks[-1].block_id

    def test_prefers_heavier_subtree_even_if_shorter(self):
        # A bushy subtree with more total blocks but a shorter main branch beats a
        # longer but thinner competitor under GHOST, while longest-chain disagrees.
        tree = BlockTree()
        thin = linear(tree, GENESIS_ID, 4)
        bushy_root = tree.add_block(GENESIS_ID, MinerKind.POOL)
        for _ in range(2):
            tree.add_block(bushy_root.block_id, MinerKind.POOL)
        heavy_child = tree.add_block(bushy_root.block_id, MinerKind.POOL)
        tree.add_block(heavy_child.block_id, MinerKind.POOL)

        ghost_tip = GhostRule().best_tip(tree)
        longest_tip = LongestChainRule().best_tip(tree)
        assert tree.is_ancestor(bushy_root.block_id, ghost_tip.block_id) or ghost_tip.block_id == bushy_root.block_id
        assert longest_tip.block_id == thin[-1].block_id

    def test_published_only_filter(self):
        tree = BlockTree()
        public = linear(tree, GENESIS_ID, 2)
        linear(tree, GENESIS_ID, 5, MinerKind.POOL, published=False)
        assert GhostRule().best_tip(tree, published_only=True).block_id == public[-1].block_id

    def test_tie_returns_multiple_tips(self):
        tree = BlockTree()
        first = linear(tree, GENESIS_ID, 2)
        second = linear(tree, GENESIS_ID, 2, MinerKind.POOL)
        tips = {tip.block_id for tip in GhostRule().best_tips(tree)}
        assert tips == {first[-1].block_id, second[-1].block_id}


class TestErrorPaths:
    def test_best_tip_with_no_visible_blocks_raises(self):
        # An artificial rule application over an empty candidate set must raise rather
        # than return a bogus tip; exercise it via a tree whose only block is hidden.
        tree = BlockTree()
        rule = LongestChainRule()
        # The genesis block is always published, so this cannot normally happen; call
        # the internal path directly with an impossible filter instead.
        tips = rule.best_tips(tree, published_only=True)
        assert tips  # genesis is always visible
        with pytest.raises(ChainStructureError):
            # Simulate the empty-tip condition by monkey-patching best_tips.
            class EmptyRule(LongestChainRule):
                def best_tips(self, tree, *, published_only=True):
                    return []

            EmptyRule().best_tip(tree)
