"""Unit tests for :mod:`repro.chain.blocktree`."""

from __future__ import annotations

import pytest

from repro.chain.block import GENESIS_ID, MinerKind
from repro.chain.blocktree import BlockTree
from repro.errors import ChainStructureError, UnknownBlockError


@pytest.fixture()
def tree() -> BlockTree:
    return BlockTree()


def build_linear_chain(tree: BlockTree, length: int, miner: MinerKind = MinerKind.HONEST):
    """Append ``length`` blocks on top of the genesis block and return them."""
    blocks = []
    parent = GENESIS_ID
    for index in range(length):
        block = tree.add_block(parent, miner, created_at=index)
        blocks.append(block)
        parent = block.block_id
    return blocks


class TestInsertion:
    def test_new_tree_contains_only_genesis(self, tree):
        assert len(tree) == 1
        assert tree.genesis.block_id == GENESIS_ID

    def test_add_block_assigns_sequential_ids_and_heights(self, tree):
        blocks = build_linear_chain(tree, 3)
        assert [block.block_id for block in blocks] == [1, 2, 3]
        assert [block.height for block in blocks] == [1, 2, 3]

    def test_add_block_unknown_parent_rejected(self, tree):
        with pytest.raises(UnknownBlockError):
            tree.add_block(99, MinerKind.HONEST)

    def test_add_block_unknown_uncle_rejected(self, tree):
        with pytest.raises(UnknownBlockError):
            tree.add_block(GENESIS_ID, MinerKind.HONEST, uncle_ids=[55])

    def test_duplicate_uncle_reference_rejected(self, tree):
        first = tree.add_block(GENESIS_ID, MinerKind.HONEST)
        fork = tree.add_block(GENESIS_ID, MinerKind.POOL)
        with pytest.raises(ChainStructureError):
            tree.add_block(first.block_id, MinerKind.HONEST, uncle_ids=[fork.block_id, fork.block_id])

    def test_parent_as_uncle_rejected(self, tree):
        first = tree.add_block(GENESIS_ID, MinerKind.HONEST)
        with pytest.raises(ChainStructureError):
            tree.add_block(first.block_id, MinerKind.HONEST, uncle_ids=[first.block_id])

    def test_children_tracking(self, tree):
        first = tree.add_block(GENESIS_ID, MinerKind.HONEST)
        second = tree.add_block(GENESIS_ID, MinerKind.POOL)
        child_ids = [child.block_id for child in tree.children(GENESIS_ID)]
        assert child_ids == [first.block_id, second.block_id]
        assert tree.children(first.block_id) == []


class TestPublication:
    def test_blocks_published_by_default(self, tree):
        block = tree.add_block(GENESIS_ID, MinerKind.HONEST)
        assert tree.is_published(block.block_id)

    def test_withheld_block_then_published(self, tree):
        block = tree.add_block(GENESIS_ID, MinerKind.POOL, published=False)
        assert not tree.is_published(block.block_id)
        tree.publish(block.block_id)
        assert tree.is_published(block.block_id)

    def test_published_blocks_listing(self, tree):
        visible = tree.add_block(GENESIS_ID, MinerKind.HONEST)
        hidden = tree.add_block(GENESIS_ID, MinerKind.POOL, published=False)
        published_ids = {block.block_id for block in tree.published_blocks()}
        assert visible.block_id in published_ids
        assert hidden.block_id not in published_ids

    def test_publish_unknown_block_rejected(self, tree):
        with pytest.raises(UnknownBlockError):
            tree.publish(123)


class TestWalks:
    def test_chain_to_returns_root_first_path(self, tree):
        blocks = build_linear_chain(tree, 4)
        path = tree.chain_to(blocks[-1].block_id)
        assert [block.block_id for block in path] == [GENESIS_ID, 1, 2, 3, 4]

    def test_ancestors_exclude_self_by_default(self, tree):
        blocks = build_linear_chain(tree, 3)
        ancestors = [block.block_id for block in tree.ancestors(blocks[-1].block_id)]
        assert ancestors == [2, 1, GENESIS_ID]

    def test_is_ancestor(self, tree):
        blocks = build_linear_chain(tree, 3)
        fork = tree.add_block(blocks[0].block_id, MinerKind.POOL)
        assert tree.is_ancestor(blocks[0].block_id, blocks[2].block_id)
        assert tree.is_ancestor(GENESIS_ID, fork.block_id)
        assert not tree.is_ancestor(blocks[2].block_id, blocks[0].block_id)
        assert not tree.is_ancestor(fork.block_id, blocks[2].block_id)

    def test_common_ancestor(self, tree):
        blocks = build_linear_chain(tree, 3)
        fork = tree.add_block(blocks[0].block_id, MinerKind.POOL)
        ancestor = tree.common_ancestor(blocks[2].block_id, fork.block_id)
        assert ancestor.block_id == blocks[0].block_id

    def test_fork_point_agrees_with_common_ancestor(self, tree):
        blocks = build_linear_chain(tree, 5)
        fork = tree.add_block(blocks[1].block_id, MinerKind.POOL)
        deeper = tree.add_block(fork.block_id, MinerKind.POOL)
        for first, second in [
            (blocks[4].block_id, deeper.block_id),
            (deeper.block_id, blocks[4].block_id),  # argument order is irrelevant
            (blocks[4].block_id, blocks[2].block_id),  # one chain contains the other
        ]:
            assert (
                tree.fork_point(first, second).block_id
                == tree.common_ancestor(first, second).block_id
            )

    def test_fork_point_of_a_block_with_itself(self, tree):
        blocks = build_linear_chain(tree, 2)
        assert tree.fork_point(blocks[1].block_id, blocks[1].block_id).block_id == blocks[1].block_id

    def test_fork_point_of_disjoint_branches_is_genesis(self, tree):
        blocks = build_linear_chain(tree, 2)
        other = tree.add_block(GENESIS_ID, MinerKind.POOL)
        assert tree.fork_point(blocks[1].block_id, other.block_id).block_id == GENESIS_ID

    def test_fork_point_unknown_block_rejected(self, tree):
        build_linear_chain(tree, 1)
        with pytest.raises(UnknownBlockError):
            tree.fork_point(1, 999)


class TestTipsAndHeights:
    def test_tips_of_linear_chain(self, tree):
        blocks = build_linear_chain(tree, 3)
        tips = tree.tips()
        assert [tip.block_id for tip in tips] == [blocks[-1].block_id]

    def test_fork_produces_two_tips(self, tree):
        blocks = build_linear_chain(tree, 2)
        fork = tree.add_block(blocks[0].block_id, MinerKind.POOL)
        tip_ids = {tip.block_id for tip in tree.tips()}
        assert tip_ids == {blocks[-1].block_id, fork.block_id}

    def test_published_only_tips_ignore_withheld_children(self, tree):
        blocks = build_linear_chain(tree, 2)
        tree.add_block(blocks[-1].block_id, MinerKind.POOL, published=False)
        published_tips = tree.tips(published_only=True)
        assert [tip.block_id for tip in published_tips] == [blocks[-1].block_id]

    def test_max_height_and_blocks_at_height(self, tree):
        blocks = build_linear_chain(tree, 3)
        fork = tree.add_block(blocks[1].block_id, MinerKind.POOL)
        assert tree.max_height() == 3
        at_height_three = {block.block_id for block in tree.blocks_at_height(3)}
        assert at_height_three == {blocks[2].block_id, fork.block_id}

    def test_blocks_in_height_range_uses_inclusive_bounds(self, tree):
        build_linear_chain(tree, 5)
        found = tree.blocks_in_height_range(2, 4)
        assert sorted(block.height for block in found) == [2, 3, 4]

    def test_blocks_in_height_range_respects_publication_filter(self, tree):
        blocks = build_linear_chain(tree, 2)
        tree.add_block(blocks[-1].block_id, MinerKind.POOL, published=False)
        visible = tree.blocks_in_height_range(0, 10, published_only=True)
        assert all(tree.is_published(block.block_id) for block in visible)


class TestUncleCandidates:
    def test_linear_chain_has_no_candidates(self, tree):
        build_linear_chain(tree, 6)
        assert tree.uncle_candidates(1, 6) == []

    def test_both_children_of_a_fork_become_candidates(self, tree):
        blocks = build_linear_chain(tree, 2)
        fork = tree.add_block(blocks[0].block_id, MinerKind.POOL)
        candidate_ids = {block.block_id for block in tree.uncle_candidates(1, 5)}
        assert candidate_ids == {blocks[1].block_id, fork.block_id}

    def test_first_child_is_indexed_when_the_fork_appears(self, tree):
        blocks = build_linear_chain(tree, 3)
        # No forks yet anywhere.
        assert tree.uncle_candidates(1, 3) == []
        fork = tree.add_block(blocks[1].block_id, MinerKind.POOL)
        candidate_ids = {block.block_id for block in tree.uncle_candidates(1, 3)}
        # The pre-existing chain block at the forked height is indexed retroactively.
        assert candidate_ids == {blocks[2].block_id, fork.block_id}

    def test_height_window_is_inclusive_and_respects_publication(self, tree):
        blocks = build_linear_chain(tree, 3)
        withheld = tree.add_block(blocks[0].block_id, MinerKind.POOL, published=False)
        assert withheld.height == 2
        assert withheld.block_id in {b.block_id for b in tree.uncle_candidates(2, 2)}
        assert withheld.block_id not in {
            b.block_id for b in tree.uncle_candidates(2, 2, published_only=True)
        }
        assert tree.uncle_candidates(3, 3) == []

    def test_candidates_are_a_subset_of_the_height_range(self, tree):
        blocks = build_linear_chain(tree, 4)
        tree.add_block(blocks[1].block_id, MinerKind.POOL)
        tree.add_block(blocks[2].block_id, MinerKind.POOL)
        range_ids = {b.block_id for b in tree.blocks_in_height_range(1, 4)}
        candidate_ids = {b.block_id for b in tree.uncle_candidates(1, 4)}
        assert candidate_ids <= range_ids


class TestStatistics:
    def test_count_by_miner_excludes_genesis(self, tree):
        build_linear_chain(tree, 2, MinerKind.HONEST)
        tree.add_block(GENESIS_ID, MinerKind.POOL)
        counts = tree.count_by_miner()
        assert counts[MinerKind.HONEST] == 2
        assert counts[MinerKind.POOL] == 1

    def test_describe_reports_counts(self, tree):
        build_linear_chain(tree, 2)
        text = tree.describe()
        assert "blocks=2" in text
