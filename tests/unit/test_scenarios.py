"""Unit tests for declarative scenario specs and their expansion."""

from __future__ import annotations

import json

import pytest

from repro.errors import ParameterError
from repro.network.topology import Topology
from repro.rewards.schedule import EthereumByzantiumSchedule, FlatUncleSchedule, make_schedule
from repro.scenarios import ScenarioSpec, topology_from_dict
from repro.simulation.rng import derive_seeds


def spec_for(**overrides) -> ScenarioSpec:
    base = dict(name="test", alphas=(0.2, 0.4), num_blocks=1000, seed=3)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestSpecValidation:
    def test_scalar_axes_are_coerced_to_tuples(self):
        spec = spec_for(alphas=0.3, strategies="honest", backends="markov")
        assert spec.alphas == (0.3,)
        assert spec.strategies == ("honest",)
        assert spec.backends == ("markov",)

    def test_empty_axis_rejected(self):
        with pytest.raises(ParameterError, match="must not be empty"):
            spec_for(alphas=())

    def test_unknown_backend_rejected_with_alternatives(self):
        with pytest.raises(ParameterError) as excinfo:
            spec_for(backends=("quantum",))
        assert "chain" in str(excinfo.value)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ParameterError, match="unknown mining strategies"):
            spec_for(strategies=("nonsense",))

    def test_bad_schedule_spec_fails_at_construction(self):
        with pytest.raises(ParameterError, match="unknown reward schedule"):
            spec_for(schedules=("exotic",))

    def test_invalid_num_runs_rejected(self):
        with pytest.raises(ParameterError, match="num_runs"):
            spec_for(num_runs=0)

    def test_non_topology_entries_rejected(self):
        with pytest.raises(ParameterError, match="Topology"):
            spec_for(topologies=("not-a-topology",))

    def test_describe_mentions_cells_and_runs(self):
        text = spec_for(num_runs=3).describe()
        assert "2 cells" in text
        assert "x 3 runs" in text


class TestExpansion:
    def test_cell_count_is_the_axis_product(self):
        spec = spec_for(
            alphas=(0.1, 0.2, 0.3),
            gammas=(0.0, 0.5),
            strategies=("honest", "selfish"),
            backends=("chain", "markov"),
        )
        assert spec.num_cells == 3 * 2 * 2 * 2
        assert len(spec.cells()) == spec.num_cells

    def test_alpha_varies_fastest_and_backend_slowest(self):
        spec = spec_for(
            alphas=(0.1, 0.2), strategies=("honest", "selfish"), backends=("chain", "markov")
        )
        coordinates = [
            (cell.backend, cell.strategy, cell.alpha) for cell in spec.cells()
        ]
        assert coordinates == [
            ("chain", "honest", 0.1),
            ("chain", "honest", 0.2),
            ("chain", "selfish", 0.1),
            ("chain", "selfish", 0.2),
            ("markov", "honest", 0.1),
            ("markov", "honest", 0.2),
            ("markov", "selfish", 0.1),
            ("markov", "selfish", 0.2),
        ]

    def test_cells_carry_fully_built_configs(self):
        spec = spec_for(schedules=(FlatUncleSchedule(0.5),), warmup_blocks=10)
        cell = spec.cells()[0]
        assert cell.config.params.alpha == 0.2
        assert cell.config.strategy == "selfish"
        assert cell.config.schedule == FlatUncleSchedule(0.5)
        assert cell.config.warmup_blocks == 10
        assert cell.config.seed == 3

    def test_expansion_is_deterministic(self):
        first = spec_for().cells()
        second = spec_for().cells()
        assert [cell.config for cell in first] == [cell.config for cell in second]

    def test_run_plan_prederives_the_shared_seed_stream(self):
        spec = spec_for(num_runs=3)
        plan = spec.run_plan()
        assert len(plan) == spec.num_planned_runs
        expected_seeds = derive_seeds(spec.seed, 3)
        for cell_index in range(spec.num_cells):
            runs = [run for run in plan if run.cell_index == cell_index]
            assert [run.config.seed for run in runs] == expected_seeds

    def test_schedule_instances_are_shared_across_cells(self):
        spec = spec_for(alphas=(0.1, 0.2, 0.3))
        schedules = {id(cell.config.schedule) for cell in spec.cells()}
        assert len(schedules) == 1


class TestLoading:
    def test_from_dict_round_trip(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "from-dict",
                "alphas": [0.1, 0.2],
                "strategies": ["honest"],
                "backends": ["markov"],
                "num_runs": 2,
                "num_blocks": 1234,
                "seed": 9,
            }
        )
        assert spec.name == "from-dict"
        assert spec.alphas == (0.1, 0.2)
        assert spec.num_blocks == 1234

    def test_unknown_keys_rejected_with_allowed_list(self):
        with pytest.raises(ParameterError) as excinfo:
            ScenarioSpec.from_dict({"name": "x", "alphas": [0.1], "turbo": True})
        message = str(excinfo.value)
        assert "'turbo'" in message
        assert "alphas" in message

    def test_name_and_alphas_required(self):
        with pytest.raises(ParameterError, match="'name' and 'alphas'"):
            ScenarioSpec.from_dict({"alphas": [0.1]})

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps({"name": "json-spec", "alphas": [0.3]}))
        spec = ScenarioSpec.from_file(path)
        assert spec.name == "json-spec"

    def test_from_toml_file(self, tmp_path):
        pytest.importorskip("tomllib")  # stdlib from Python 3.11
        path = tmp_path / "scenario.toml"
        path.write_text(
            'name = "toml-spec"\nalphas = [0.2, 0.3]\nbackends = ["markov"]\nnum_runs = 2\n'
        )
        spec = ScenarioSpec.from_file(path)
        assert spec.name == "toml-spec"
        assert spec.backends == ("markov",)

    def test_invalid_json_reports_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ParameterError, match="invalid JSON"):
            ScenarioSpec.from_file(path)

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "scenario.yaml"
        path.write_text("name: x")
        with pytest.raises(ParameterError, match=".json or .toml"):
            ScenarioSpec.from_file(path)

    def test_missing_file_reports_path(self, tmp_path):
        with pytest.raises(ParameterError, match="cannot read scenario file"):
            ScenarioSpec.from_file(tmp_path / "absent.json")

    def test_topologies_from_dicts(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "topo",
                "alphas": [0.3],
                "backends": ["network"],
                "topologies": [
                    {"kind": "single_pool", "alpha": 0.3, "num_honest": 4},
                    {
                        "kind": "multi_pool",
                        "pools": [[0.2, "selfish"], [0.2, "selfish"]],
                        "latency": "constant:0.1",
                    },
                ],
            }
        )
        assert all(isinstance(topology, Topology) for topology in spec.topologies)
        assert spec.num_cells == 2


class TestTopologyFromDict:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ParameterError, match="unknown topology kind"):
            topology_from_dict({"kind": "ring"})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ParameterError, match="unknown single_pool topology keys"):
            topology_from_dict({"kind": "single_pool", "alpha": 0.3, "speed": 1})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ParameterError, match="needs 'alpha'"):
            topology_from_dict({"kind": "single_pool"})
        with pytest.raises(ParameterError, match="needs 'pools'"):
            topology_from_dict({"kind": "multi_pool"})


class TestMakeSchedule:
    def test_named_specs(self):
        assert make_schedule("ethereum") == EthereumByzantiumSchedule()
        assert make_schedule("flat:0.5") == FlatUncleSchedule(0.5)
        assert make_schedule("flat:0.875:1000000") == FlatUncleSchedule(
            0.875, max_uncle_distance=1_000_000
        )

    def test_schedule_objects_pass_through(self):
        schedule = FlatUncleSchedule(0.25)
        assert make_schedule(schedule) is schedule

    def test_unknown_spec_lists_available(self):
        with pytest.raises(ParameterError) as excinfo:
            make_schedule("exotic")
        assert "unknown reward schedule 'exotic'" in str(excinfo.value)
        assert "ethereum" in str(excinfo.value)

    def test_bad_arguments_rejected(self):
        with pytest.raises(ParameterError, match="takes no arguments"):
            make_schedule("ethereum:1")
        with pytest.raises(ParameterError, match="non-numeric"):
            make_schedule("flat:lots")
        with pytest.raises(ParameterError, match="flat:<uncle_fraction>"):
            make_schedule("flat:0.5:6:9")

    def test_schedule_value_equality_and_hash(self):
        assert EthereumByzantiumSchedule() == EthereumByzantiumSchedule()
        assert hash(FlatUncleSchedule(0.5)) == hash(FlatUncleSchedule(0.5))
        assert FlatUncleSchedule(0.5) != FlatUncleSchedule(0.25)
        assert EthereumByzantiumSchedule() != FlatUncleSchedule(0.5)
