"""Unit tests for the descriptive experiment drivers (Table I, Fig. 6) and the CLI."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.experiments.cli import build_parser, run_experiment
from repro.experiments.pools import MiningPool, TOP_POOLS_2018, pool_concentration_report, top_k_share
from repro.experiments.table1 import run_table1
from repro.rewards.schedule import BitcoinSchedule, EthereumByzantiumSchedule


class TestTable1:
    def test_ethereum_has_all_reward_types_and_bitcoin_does_not(self):
        result = run_table1()
        by_type = {row.reward_type: row for row in result.rows}
        assert by_type["Static reward"].in_ethereum and by_type["Static reward"].in_bitcoin
        assert by_type["Uncle reward"].in_ethereum and not by_type["Uncle reward"].in_bitcoin
        assert by_type["Nephew reward"].in_ethereum and not by_type["Nephew reward"].in_bitcoin

    def test_report_renders_every_row(self):
        text = run_table1().report()
        assert "Uncle reward" in text
        assert "Nephew reward" in text
        assert "Table I" in text

    def test_custom_schedules_are_inspected(self):
        result = run_table1(ethereum=BitcoinSchedule(), bitcoin=EthereumByzantiumSchedule())
        by_type = {row.reward_type: row for row in result.rows}
        # Swapping the schedules swaps the check marks: the driver reads the schedules.
        assert not by_type["Uncle reward"].in_ethereum
        assert by_type["Uncle reward"].in_bitcoin


class TestPools:
    def test_dataset_shares_sum_to_one(self):
        assert sum(pool.hash_share for pool in TOP_POOLS_2018) == pytest.approx(1.0, abs=1e-3)

    def test_paper_concentration_facts(self):
        assert top_k_share(k=1) == pytest.approx(0.2634, abs=1e-4)
        assert top_k_share(k=2) == pytest.approx(0.488, abs=1e-3)
        assert top_k_share(k=5) > 0.81

    def test_top_k_ignores_the_others_bucket(self):
        assert top_k_share(k=6) == top_k_share(k=5)

    def test_invalid_share_rejected(self):
        with pytest.raises(ParameterError):
            MiningPool(name="bad", hash_share=1.5)

    def test_invalid_k_rejected(self):
        with pytest.raises(ParameterError):
            top_k_share(k=0)

    def test_report_mentions_largest_pool(self):
        text = pool_concentration_report()
        assert "Ethermine" in text
        assert "26.34%" in text


class TestCli:
    def test_parser_accepts_known_experiments(self):
        parser = build_parser()
        arguments = parser.parse_args(["table1"])
        assert arguments.experiment == "table1"
        assert arguments.fast is False

    def test_parser_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure99"])

    def test_fast_flag(self):
        arguments = build_parser().parse_args(["figure8", "--fast"])
        assert arguments.fast is True

    def test_workers_flag(self):
        arguments = build_parser().parse_args(["strategies", "-j", "4"])
        assert arguments.experiment == "strategies"
        assert arguments.workers == 4
        assert build_parser().parse_args(["figure8"]).workers is None

    def test_parser_accepts_strategies_experiment(self):
        arguments = build_parser().parse_args(["strategies", "--fast"])
        assert arguments.experiment == "strategies"

    def test_backend_flag_on_every_subcommand(self):
        for name in ("figure8", "figure9", "table2", "strategies", "network", "table1"):
            arguments = build_parser().parse_args([name, "--backend", "markov"])
            assert arguments.backend == "markov"
        assert build_parser().parse_args(["figure8"]).backend == "chain"

    def test_backend_flag_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure8", "--backend", "quantum"])

    def test_parser_accepts_network_experiment(self):
        arguments = build_parser().parse_args(["network", "--fast", "-j", "2"])
        assert arguments.experiment == "network"
        assert arguments.workers == 2

    def test_workers_flag_on_analytical_subcommands(self):
        # The shared plumbing covers every driver, not only the simulation-backed ones.
        for name in ("figure9", "figure10", "table1", "discussion", "figure6"):
            arguments = build_parser().parse_args([name, "-j", "3"])
            assert arguments.workers == 3

    def test_run_experiment_table1(self):
        assert "Table I" in run_experiment("table1")

    def test_run_experiment_unknown_name_lists_available_experiments(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError) as excinfo:
            run_experiment("figure99")
        message = str(excinfo.value)
        assert "unknown experiment 'figure99'" in message
        for name in ("figure8", "strategies", "network", "optimal", "table2"):
            assert name in message

    def test_parser_accepts_optimal_experiment(self):
        arguments = build_parser().parse_args(["optimal", "--fast", "-j", "2"])
        assert arguments.experiment == "optimal"
        assert arguments.workers == 2

    def test_run_experiment_table1_ignores_workers_and_backend(self):
        assert "Table I" in run_experiment("table1", workers=2, backend="markov")

    def test_run_experiment_figure6(self):
        assert "Ethermine" in run_experiment("figure6")
