"""Unit tests for :mod:`repro.rewards.breakdown`."""

from __future__ import annotations

import pytest

from repro.rewards.breakdown import PartyRewards, RevenueSplit


class TestPartyRewards:
    def test_defaults_to_zero(self):
        rewards = PartyRewards()
        assert rewards.static == rewards.uncle == rewards.nephew == 0.0
        assert rewards.total == 0.0

    def test_total_sums_components(self):
        rewards = PartyRewards(static=1.0, uncle=0.5, nephew=0.25)
        assert rewards.total == pytest.approx(1.75)

    def test_addition_is_componentwise(self):
        left = PartyRewards(static=1.0, uncle=2.0, nephew=3.0)
        right = PartyRewards(static=0.5, uncle=0.5, nephew=0.5)
        combined = left + right
        assert combined == PartyRewards(static=1.5, uncle=2.5, nephew=3.5)

    def test_subtraction_is_componentwise(self):
        left = PartyRewards(static=1.0, uncle=2.0, nephew=3.0)
        right = PartyRewards(static=0.5, uncle=0.5, nephew=0.5)
        assert left - right == PartyRewards(static=0.5, uncle=1.5, nephew=2.5)

    def test_scaling(self):
        rewards = PartyRewards(static=1.0, uncle=2.0, nephew=4.0)
        assert rewards.scaled(0.5) == PartyRewards(static=0.5, uncle=1.0, nephew=2.0)
        assert 0.5 * rewards == rewards * 0.5 == rewards.scaled(0.5)

    def test_as_dict_includes_total(self):
        assert PartyRewards(static=1.0).as_dict() == {
            "static": 1.0,
            "uncle": 0.0,
            "nephew": 0.0,
            "total": 1.0,
        }

    def test_isclose(self):
        left = PartyRewards(static=1.0, uncle=2.0, nephew=3.0)
        right = PartyRewards(static=1.0 + 1e-13, uncle=2.0, nephew=3.0)
        assert left.isclose(right)
        assert not left.isclose(PartyRewards(static=1.1, uncle=2.0, nephew=3.0))

    def test_adding_non_rewards_is_rejected(self):
        with pytest.raises(TypeError):
            PartyRewards() + 1  # type: ignore[operator]

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PartyRewards().static = 1.0  # type: ignore[misc]


class TestRevenueSplit:
    def test_totals(self):
        split = RevenueSplit(
            pool=PartyRewards(static=1.0, uncle=0.5, nephew=0.25),
            honest=PartyRewards(static=2.0, uncle=1.0, nephew=0.75),
        )
        assert split.total == pytest.approx(5.5)
        assert split.total_static == pytest.approx(3.0)
        assert split.total_uncle == pytest.approx(1.5)
        assert split.total_nephew == pytest.approx(1.0)

    def test_pool_share(self):
        split = RevenueSplit(pool=PartyRewards(static=1.0), honest=PartyRewards(static=3.0))
        assert split.pool_share() == pytest.approx(0.25)

    def test_pool_share_of_empty_split_is_zero(self):
        assert RevenueSplit().pool_share() == 0.0

    def test_addition(self):
        first = RevenueSplit(pool=PartyRewards(static=1.0), honest=PartyRewards(uncle=1.0))
        second = RevenueSplit(pool=PartyRewards(nephew=2.0), honest=PartyRewards(static=3.0))
        combined = first + second
        assert combined.pool == PartyRewards(static=1.0, nephew=2.0)
        assert combined.honest == PartyRewards(static=3.0, uncle=1.0)

    def test_scaling(self):
        split = RevenueSplit(pool=PartyRewards(static=2.0), honest=PartyRewards(static=4.0))
        halved = split.scaled(0.5)
        assert halved.pool.static == 1.0
        assert halved.honest.static == 2.0
        assert (0.5 * split).isclose(halved)

    def test_as_dict_structure(self):
        data = RevenueSplit(pool=PartyRewards(static=1.0)).as_dict()
        assert set(data) == {"pool", "honest"}
        assert data["pool"]["static"] == 1.0

    def test_isclose(self):
        split = RevenueSplit(pool=PartyRewards(static=1.0), honest=PartyRewards(static=2.0))
        nearly = RevenueSplit(pool=PartyRewards(static=1.0 + 1e-12), honest=PartyRewards(static=2.0))
        assert split.isclose(nearly)
        assert not split.isclose(RevenueSplit())
