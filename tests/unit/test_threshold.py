"""Unit tests for the profitability-threshold solver."""

from __future__ import annotations

import pytest

from repro.analysis.absolute import Scenario
from repro.analysis.revenue import RevenueModel
from repro.analysis.threshold import profitable_threshold, selfish_gain
from repro.params import MiningParams
from repro.rewards.schedule import BitcoinSchedule, FlatUncleSchedule


@pytest.fixture(scope="module")
def bitcoin_small_model():
    return RevenueModel(BitcoinSchedule(), max_lead=30)


@pytest.fixture(scope="module")
def flat_small_model():
    return RevenueModel(FlatUncleSchedule(0.5), max_lead=30)


class TestSelfishGain:
    def test_gain_is_negative_below_and_positive_above_the_bitcoin_threshold(self, bitcoin_small_model):
        # The Bitcoin threshold at gamma=0.5 is exactly 0.25.
        below = selfish_gain(bitcoin_small_model, MiningParams(alpha=0.20, gamma=0.5), Scenario.REGULAR_ONLY)
        above = selfish_gain(bitcoin_small_model, MiningParams(alpha=0.30, gamma=0.5), Scenario.REGULAR_ONLY)
        assert below < 0
        assert above > 0


class TestThresholdSearch:
    def test_bitcoin_schedule_recovers_the_eyal_sirer_threshold(self, bitcoin_small_model):
        result = profitable_threshold(0.5, scenario=Scenario.REGULAR_ONLY, model=bitcoin_small_model)
        assert result.alpha_star == pytest.approx(0.25, abs=2e-3)
        assert not result.profitable_everywhere
        assert not result.profitable_nowhere

    def test_flat_half_schedule_matches_paper_threshold(self, flat_small_model):
        result = profitable_threshold(0.5, scenario=Scenario.REGULAR_ONLY, model=flat_small_model)
        assert result.alpha_star == pytest.approx(0.163, abs=3e-3)

    def test_gamma_one_is_profitable_everywhere(self, flat_small_model):
        result = profitable_threshold(1.0, scenario=Scenario.REGULAR_ONLY, model=flat_small_model)
        assert result.profitable_everywhere
        assert result.alpha_star == 0.0

    def test_threshold_decreases_with_gamma(self, flat_small_model):
        low = profitable_threshold(0.2, scenario=Scenario.REGULAR_ONLY, model=flat_small_model)
        high = profitable_threshold(0.8, scenario=Scenario.REGULAR_ONLY, model=flat_small_model)
        assert high.alpha_star < low.alpha_star

    def test_scenario2_threshold_is_higher_than_scenario1(self, flat_small_model):
        scenario1 = profitable_threshold(0.5, scenario=Scenario.REGULAR_ONLY, model=flat_small_model)
        scenario2 = profitable_threshold(0.5, scenario=Scenario.REGULAR_PLUS_UNCLE, model=flat_small_model)
        assert scenario2.alpha_star > scenario1.alpha_star

    def test_model_built_on_the_fly_when_not_supplied(self):
        result = profitable_threshold(
            0.5, scenario=Scenario.REGULAR_ONLY, schedule=BitcoinSchedule(), max_lead=25, grid_points=15
        )
        assert result.alpha_star == pytest.approx(0.25, abs=5e-3)

    def test_result_reports_evaluation_count_and_description(self, flat_small_model):
        result = profitable_threshold(0.5, scenario=Scenario.REGULAR_ONLY, model=flat_small_model)
        assert result.evaluations > 5
        text = result.describe()
        assert "alpha*" in text
        assert "0.5" in text
