"""Unit tests for the Markov Monte Carlo simulator."""

from __future__ import annotations

import pytest

from repro.analysis.absolute import Scenario
from repro.markov.state import State
from repro.params import MiningParams
from repro.rewards.schedule import BitcoinSchedule, EthereumByzantiumSchedule
from repro.simulation.config import SimulationConfig
from repro.simulation.fast import MarkovMonteCarlo


def config(alpha=0.3, gamma=0.5, blocks=30_000, seed=1, schedule=None) -> SimulationConfig:
    return SimulationConfig(
        params=MiningParams(alpha=alpha, gamma=gamma),
        schedule=schedule or EthereumByzantiumSchedule(),
        num_blocks=blocks,
        seed=seed,
    )


class TestBasics:
    def test_reproducible_from_seed(self):
        first = MarkovMonteCarlo(config(seed=4)).run()
        second = MarkovMonteCarlo(config(seed=4)).run()
        assert first.pool_rewards.isclose(second.pool_rewards)
        assert first.regular_blocks == pytest.approx(second.regular_blocks)

    def test_block_accounting_sums_to_total(self):
        result = MarkovMonteCarlo(config(blocks=10_000)).run()
        assert result.regular_blocks + result.uncle_blocks + result.stale_blocks == pytest.approx(
            result.total_blocks, abs=1e-6
        )

    def test_starts_in_zero_state_and_tracks_transitions(self):
        simulator = MarkovMonteCarlo(config(blocks=100))
        assert simulator.state == State(0, 0)
        simulator.run()
        assert simulator._events_run == 100

    def test_compiled_tables_stay_small(self):
        simulator = MarkovMonteCarlo(config(blocks=5_000))
        simulator.run()
        # Only a modest number of distinct states should ever be visited/compiled.
        assert 1 < simulator.tables.num_states < 200

    def test_transition_cache_reused_by_scalar_path(self):
        simulator = MarkovMonteCarlo(config(blocks=5_000), accumulate="scalar")
        simulator.run()
        # Only a modest number of distinct states should ever be visited.
        assert 1 < len(simulator._transition_cache) < 200

    def test_unknown_accumulate_mode_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            MarkovMonteCarlo(config(), accumulate="vector")


class TestAccumulateModesAgree:
    """PR 2 regression contract: the compiled-table walk is a drop-in replacement.

    For a given seed the table mode must sample the *identical* transition sequence
    as the scalar per-event loop, and every accumulated total must agree to float
    reassociation accuracy (count-times-value versus repeated addition).
    """

    CASES = [
        (0.35, 0.5, None, 1),
        (0.10, 0.0, None, 7),
        (0.45, 0.8, None, 3),
        (0.30, 0.5, BitcoinSchedule(), 11),
    ]

    @pytest.mark.parametrize("alpha,gamma,schedule,seed", CASES)
    def test_same_seed_transition_sequence_identical(self, alpha, gamma, schedule, seed):
        cfg = config(alpha=alpha, gamma=gamma, schedule=schedule, blocks=20_000, seed=seed)
        table_trace: list[int] = []
        scalar_trace: list[int] = []
        MarkovMonteCarlo(cfg, accumulate="table").run(trace=table_trace)
        MarkovMonteCarlo(cfg, accumulate="scalar").run(trace=scalar_trace)
        assert table_trace == scalar_trace

    @pytest.mark.parametrize("alpha,gamma,schedule,seed", CASES)
    def test_aggregates_agree_to_reassociation_tolerance(self, alpha, gamma, schedule, seed):
        cfg = config(alpha=alpha, gamma=gamma, schedule=schedule, blocks=20_000, seed=seed)
        table = MarkovMonteCarlo(cfg, accumulate="table").run()
        scalar = MarkovMonteCarlo(cfg, accumulate="scalar").run()
        assert table.pool_rewards.isclose(scalar.pool_rewards, rel_tol=1e-9)
        assert table.honest_rewards.isclose(scalar.honest_rewards, rel_tol=1e-9)
        for name in (
            "regular_blocks",
            "pool_regular_blocks",
            "honest_regular_blocks",
            "uncle_blocks",
            "pool_uncle_blocks",
            "honest_uncle_blocks",
            "stale_blocks",
        ):
            assert getattr(table, name) == pytest.approx(
                getattr(scalar, name), rel=1e-9, abs=1e-9
            ), name
        for table_counts, scalar_counts in (
            (table.honest_uncle_distance_counts, scalar.honest_uncle_distance_counts),
            (table.pool_uncle_distance_counts, scalar.pool_uncle_distance_counts),
        ):
            assert set(table_counts) == set(scalar_counts)
            for distance, value in table_counts.items():
                assert value == pytest.approx(scalar_counts[distance], rel=1e-9, abs=1e-9)

    def test_honest_strategy_modes_agree_exactly(self):
        cfg = config(blocks=30_000, seed=5).with_strategy("honest")
        table = MarkovMonteCarlo(cfg, accumulate="table").run()
        scalar = MarkovMonteCarlo(cfg, accumulate="scalar").run()
        # Block attribution is integer counting over the identical draw stream.
        assert table.pool_regular_blocks == scalar.pool_regular_blocks
        assert table.pool_rewards == scalar.pool_rewards

    def test_final_state_matches_scalar_path(self):
        cfg = config(blocks=10_000, seed=13)
        table_sim = MarkovMonteCarlo(cfg, accumulate="table")
        scalar_sim = MarkovMonteCarlo(cfg, accumulate="scalar")
        table_sim.run()
        scalar_sim.run()
        assert table_sim.state == scalar_sim.state
        assert table_sim._events_run == scalar_sim._events_run == 10_000


class TestStatisticalAgreement:
    def test_matches_analytical_revenue(self, ethereum_model):
        params = MiningParams(alpha=0.3, gamma=0.5)
        analytical = ethereum_model.revenue_rates(params)
        result = MarkovMonteCarlo(config(blocks=60_000, seed=11)).run()
        assert result.pool_rewards.total / result.total_blocks == pytest.approx(
            analytical.pool.total, abs=0.01
        )
        assert result.regular_blocks / result.total_blocks == pytest.approx(
            analytical.regular_rate, abs=0.01
        )

    def test_absolute_revenue_close_to_analysis(self, ethereum_model):
        params = MiningParams(alpha=0.35, gamma=0.5)
        analytical = ethereum_model.revenue_rates(params)
        result = MarkovMonteCarlo(config(alpha=0.35, blocks=60_000, seed=12)).run()
        expected = analytical.pool.total / analytical.regular_rate
        assert result.pool_absolute_revenue(Scenario.REGULAR_ONLY) == pytest.approx(expected, abs=0.02)

    def test_bitcoin_schedule_produces_no_uncle_rewards(self):
        result = MarkovMonteCarlo(config(schedule=BitcoinSchedule(), blocks=10_000)).run()
        assert result.pool_rewards.uncle == 0.0
        assert result.honest_rewards.nephew == 0.0
        assert result.uncle_blocks == 0.0

    def test_tiny_pool_rarely_builds_leads(self):
        result = MarkovMonteCarlo(config(alpha=0.05, blocks=20_000, seed=3)).run()
        assert result.stale_blocks / result.total_blocks < 0.02
        assert result.relative_pool_revenue < 0.05
