"""Unit tests for the Markov Monte Carlo simulator."""

from __future__ import annotations

import pytest

from repro.analysis.absolute import Scenario
from repro.markov.state import State
from repro.params import MiningParams
from repro.rewards.schedule import BitcoinSchedule, EthereumByzantiumSchedule
from repro.simulation.config import SimulationConfig
from repro.simulation.fast import MarkovMonteCarlo


def config(alpha=0.3, gamma=0.5, blocks=30_000, seed=1, schedule=None) -> SimulationConfig:
    return SimulationConfig(
        params=MiningParams(alpha=alpha, gamma=gamma),
        schedule=schedule or EthereumByzantiumSchedule(),
        num_blocks=blocks,
        seed=seed,
    )


class TestBasics:
    def test_reproducible_from_seed(self):
        first = MarkovMonteCarlo(config(seed=4)).run()
        second = MarkovMonteCarlo(config(seed=4)).run()
        assert first.pool_rewards.isclose(second.pool_rewards)
        assert first.regular_blocks == pytest.approx(second.regular_blocks)

    def test_block_accounting_sums_to_total(self):
        result = MarkovMonteCarlo(config(blocks=10_000)).run()
        assert result.regular_blocks + result.uncle_blocks + result.stale_blocks == pytest.approx(
            result.total_blocks, abs=1e-6
        )

    def test_starts_in_zero_state_and_tracks_transitions(self):
        simulator = MarkovMonteCarlo(config(blocks=100))
        assert simulator.state == State(0, 0)
        simulator.run()
        assert simulator._events_run == 100

    def test_transition_cache_reused(self):
        simulator = MarkovMonteCarlo(config(blocks=5_000))
        simulator.run()
        # Only a modest number of distinct states should ever be visited.
        assert 1 < len(simulator._transition_cache) < 200


class TestStatisticalAgreement:
    def test_matches_analytical_revenue(self, ethereum_model):
        params = MiningParams(alpha=0.3, gamma=0.5)
        analytical = ethereum_model.revenue_rates(params)
        result = MarkovMonteCarlo(config(blocks=60_000, seed=11)).run()
        assert result.pool_rewards.total / result.total_blocks == pytest.approx(
            analytical.pool.total, abs=0.01
        )
        assert result.regular_blocks / result.total_blocks == pytest.approx(
            analytical.regular_rate, abs=0.01
        )

    def test_absolute_revenue_close_to_analysis(self, ethereum_model):
        params = MiningParams(alpha=0.35, gamma=0.5)
        analytical = ethereum_model.revenue_rates(params)
        result = MarkovMonteCarlo(config(alpha=0.35, blocks=60_000, seed=12)).run()
        expected = analytical.pool.total / analytical.regular_rate
        assert result.pool_absolute_revenue(Scenario.REGULAR_ONLY) == pytest.approx(expected, abs=0.02)

    def test_bitcoin_schedule_produces_no_uncle_rewards(self):
        result = MarkovMonteCarlo(config(schedule=BitcoinSchedule(), blocks=10_000)).run()
        assert result.pool_rewards.uncle == 0.0
        assert result.honest_rewards.nephew == 0.0
        assert result.uncle_blocks == 0.0

    def test_tiny_pool_rarely_builds_leads(self):
        result = MarkovMonteCarlo(config(alpha=0.05, blocks=20_000, seed=3)).run()
        assert result.stale_blocks / result.total_blocks < 0.02
        assert result.relative_pool_revenue < 0.05
