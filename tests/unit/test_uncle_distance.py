"""Unit tests for the honest uncle-distance distribution (Table II machinery)."""

from __future__ import annotations

import pytest

from repro.analysis.revenue import RevenueModel
from repro.analysis.uncle_distance import (
    distribution_from_rates,
    honest_uncle_distance_distribution,
)
from repro.errors import ParameterError
from repro.params import MiningParams


class TestDistribution:
    def test_probabilities_sum_to_one(self, ethereum_model):
        distribution = honest_uncle_distance_distribution(
            MiningParams(alpha=0.3, gamma=0.5), model=ethereum_model
        )
        assert distribution.total_probability() == pytest.approx(1.0)

    def test_distances_limited_to_protocol_window(self, ethereum_model):
        distribution = honest_uncle_distance_distribution(
            MiningParams(alpha=0.45, gamma=0.5), model=ethereum_model
        )
        assert set(distribution.probabilities) <= set(range(1, 7))

    def test_table2_values_alpha_030(self, ethereum_model):
        distribution = honest_uncle_distance_distribution(
            MiningParams(alpha=0.3, gamma=0.5), model=ethereum_model
        )
        paper = {1: 0.527, 2: 0.295, 3: 0.111, 4: 0.043, 5: 0.017, 6: 0.007}
        for distance, expected in paper.items():
            assert distribution.probability(distance) == pytest.approx(expected, abs=5e-3)
        assert distribution.expectation == pytest.approx(1.75, abs=0.02)

    def test_table2_values_alpha_045(self, ethereum_model):
        distribution = honest_uncle_distance_distribution(
            MiningParams(alpha=0.45, gamma=0.5), model=ethereum_model
        )
        paper = {1: 0.284, 2: 0.249, 3: 0.171, 4: 0.125, 5: 0.096, 6: 0.075}
        for distance, expected in paper.items():
            assert distribution.probability(distance) == pytest.approx(expected, abs=5e-3)
        assert distribution.expectation == pytest.approx(2.72, abs=0.02)

    def test_expectation_grows_with_alpha(self, ethereum_model):
        small = honest_uncle_distance_distribution(MiningParams(alpha=0.2, gamma=0.5), model=ethereum_model)
        large = honest_uncle_distance_distribution(MiningParams(alpha=0.45, gamma=0.5), model=ethereum_model)
        assert large.expectation > small.expectation

    def test_as_rows_covers_every_distance(self, ethereum_model):
        distribution = honest_uncle_distance_distribution(
            MiningParams(alpha=0.3, gamma=0.5), model=ethereum_model
        )
        rows = distribution.as_rows()
        assert [row[0] for row in rows] == [1, 2, 3, 4, 5, 6]
        assert sum(row[1] for row in rows) == pytest.approx(1.0)

    def test_probability_of_unseen_distance_is_zero(self, ethereum_model):
        distribution = honest_uncle_distance_distribution(
            MiningParams(alpha=0.3, gamma=0.5), model=ethereum_model
        )
        assert distribution.probability(12) == 0.0

    def test_rates_are_kept_alongside_probabilities(self, ethereum_model):
        params = MiningParams(alpha=0.3, gamma=0.5)
        rates = ethereum_model.revenue_rates(params)
        distribution = distribution_from_rates(rates)
        assert sum(distribution.rates.values()) == pytest.approx(
            sum(
                rate
                for distance, rate in rates.honest_uncle_distance_rates.items()
                if distance <= 6
            )
        )

    def test_invalid_max_distance_rejected(self, ethereum_model):
        rates = ethereum_model.revenue_rates(MiningParams(alpha=0.3, gamma=0.5))
        with pytest.raises(ParameterError):
            distribution_from_rates(rates, max_distance=0)

    def test_model_built_on_the_fly(self):
        distribution = honest_uncle_distance_distribution(MiningParams(alpha=0.3, gamma=0.5), max_lead=30)
        assert distribution.probability(1) == pytest.approx(0.527, abs=5e-3)

    def test_empty_distribution_when_no_honest_uncles(self):
        # With gamma = 1 and a tiny pool there are almost no honest uncles, but the
        # container must behave sensibly even for an exactly empty distribution.
        model = RevenueModel(max_lead=20)
        rates = model.revenue_rates(MiningParams(alpha=0.001, gamma=1.0))
        distribution = distribution_from_rates(rates)
        assert distribution.total_probability() == pytest.approx(1.0) or distribution.probabilities == {}
