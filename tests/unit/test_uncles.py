"""Unit tests for the uncle-eligibility rules."""

from __future__ import annotations

import pytest

from repro.chain.block import GENESIS_ID, MinerKind
from repro.chain.blocktree import BlockTree
from repro.chain.uncles import eligible_uncles, is_eligible_uncle, referencing_distance


def linear(tree: BlockTree, parent: int, length: int, miner=MinerKind.HONEST):
    blocks = []
    for index in range(length):
        block = tree.add_block(parent, miner, created_at=len(tree) + index)
        blocks.append(block)
        parent = block.block_id
    return blocks


@pytest.fixture()
def forked_tree():
    """A main chain of length 6 with a stale sibling of block 1 (a classic uncle)."""
    tree = BlockTree()
    main = linear(tree, GENESIS_ID, 6)
    stale = tree.add_block(GENESIS_ID, MinerKind.POOL)
    return tree, main, stale


class TestEligibility:
    def test_sibling_of_main_chain_block_is_eligible(self, forked_tree):
        tree, main, stale = forked_tree
        assert is_eligible_uncle(tree, stale.block_id, main[0].block_id)

    def test_ancestor_is_not_an_uncle(self, forked_tree):
        tree, main, _ = forked_tree
        assert not is_eligible_uncle(tree, main[0].block_id, main[3].block_id)

    def test_genesis_is_never_an_uncle(self, forked_tree):
        tree, main, _ = forked_tree
        assert not is_eligible_uncle(tree, GENESIS_ID, main[3].block_id)

    def test_distance_window_enforced(self, forked_tree):
        tree, main, stale = forked_tree
        # New block on main[5] has height 7; the stale block has height 1 => distance 6.
        assert is_eligible_uncle(tree, stale.block_id, main[5].block_id)
        extended = tree.add_block(main[5].block_id, MinerKind.HONEST)
        # Now the distance would be 7: too far.
        assert not is_eligible_uncle(tree, stale.block_id, extended.block_id)

    def test_uncle_whose_parent_is_off_chain_rejected(self, forked_tree):
        tree, main, stale = forked_tree
        # A child of the stale block is not a valid uncle for the main chain: its
        # parent is not part of the chain being extended.
        stale_child = tree.add_block(stale.block_id, MinerKind.POOL)
        assert not is_eligible_uncle(tree, stale_child.block_id, main[3].block_id)

    def test_already_referenced_uncle_rejected(self, forked_tree):
        tree, main, stale = forked_tree
        nephew = tree.add_block(main[5].block_id, MinerKind.HONEST, uncle_ids=[stale.block_id])
        assert not is_eligible_uncle(tree, stale.block_id, nephew.block_id)

    def test_future_block_not_eligible(self, forked_tree):
        tree, main, _ = forked_tree
        late_fork = tree.add_block(main[3].block_id, MinerKind.POOL)
        # From the point of view of a block mined on main[1] the fork at height 5 is
        # in the future (distance would be non-positive).
        assert not is_eligible_uncle(tree, late_fork.block_id, main[1].block_id)

    def test_custom_distance_window(self, forked_tree):
        tree, main, stale = forked_tree
        assert not is_eligible_uncle(tree, stale.block_id, main[3].block_id, max_distance=2)
        assert is_eligible_uncle(tree, stale.block_id, main[1].block_id, max_distance=2)


class TestSelection:
    def test_eligible_uncles_sorted_oldest_first(self):
        tree = BlockTree()
        main = linear(tree, GENESIS_ID, 4)
        old_stale = tree.add_block(GENESIS_ID, MinerKind.POOL)
        young_stale = tree.add_block(main[1].block_id, MinerKind.POOL)
        chosen = eligible_uncles(tree, main[3].block_id, list(tree.blocks()))
        assert [block.block_id for block in chosen] == [old_stale.block_id, young_stale.block_id]

    def test_candidates_outside_window_filtered(self):
        tree = BlockTree()
        main = linear(tree, GENESIS_ID, 9)
        stale = tree.add_block(GENESIS_ID, MinerKind.POOL)  # height 1
        chosen = eligible_uncles(tree, main[8].block_id, list(tree.blocks()))
        assert stale.block_id not in [block.block_id for block in chosen]

    def test_empty_candidate_list(self):
        tree = BlockTree()
        main = linear(tree, GENESIS_ID, 2)
        assert eligible_uncles(tree, main[1].block_id, []) == []

    def test_referencing_distance(self, forked_tree):
        tree, main, stale = forked_tree
        nephew = tree.add_block(main[2].block_id, MinerKind.HONEST, uncle_ids=[stale.block_id])
        assert referencing_distance(tree, nephew.block_id, stale.block_id) == nephew.height - stale.height
