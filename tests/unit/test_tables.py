"""Unit tests for the compiled transition tables."""

from __future__ import annotations

import pytest

from repro.analysis.reward_cases import REWARD_COMPONENTS, transition_rewards
from repro.markov.state import State, decode_state
from repro.markov.transitions import transitions_from_state
from repro.params import MiningParams
from repro.rewards.schedule import BitcoinSchedule, EthereumByzantiumSchedule
from repro.simulation.rng import RandomSource
from repro.simulation.tables import CompiledTransitionTables

PARAMS = MiningParams(alpha=0.35, gamma=0.5)
MAX_LEAD = 10**9


def make_tables(params=PARAMS, schedule=None) -> CompiledTransitionTables:
    return CompiledTransitionTables(params, schedule or EthereumByzantiumSchedule(), max_lead=MAX_LEAD)


class TestCompilation:
    def test_rows_compile_lazily(self):
        tables = make_tables()
        assert tables.num_states == 0
        tables.row_for(State(0, 0))
        assert tables.num_states == 1
        assert tables.num_transitions == 2  # cases 1 and 2 leave (0,0)
        tables.row_for(State(0, 0))
        assert tables.num_states == 1  # memoised

    def test_thresholds_are_the_scalar_partial_sums(self):
        tables = make_tables()
        for state in (State(0, 0), State(1, 0), State(1, 1), State(2, 0), State(5, 2)):
            row = tables.row_for(state)
            transitions = list(transitions_from_state(state, PARAMS, max_lead=MAX_LEAD))
            cumulative = 0.0
            expected = []
            for transition in transitions:
                cumulative += transition.rate
                expected.append(cumulative)
            assert list(row[0]) == expected
            assert row[0][-1] == pytest.approx(1.0)

    def test_reward_matrix_rows_match_transition_rewards(self):
        tables = make_tables()
        for state in (State(0, 0), State(1, 0), State(1, 1), State(2, 0), State(4, 1)):
            tables.row_for(state)
        matrix = tables.reward_matrix()
        assert matrix.shape == (tables.num_transitions, len(REWARD_COMPONENTS))
        schedule = EthereumByzantiumSchedule()
        for index in range(tables.num_transitions):
            transition = tables.transition_at(index)
            record = transition_rewards(transition, PARAMS, schedule)
            assert tuple(matrix[index]) == record.component_vector()


class TestWalk:
    def test_counts_sum_to_steps_and_final_state_is_reachable(self):
        tables = make_tables()
        counts, final_state = tables.walk(State(0, 0), 5_000, RandomSource(3))
        assert sum(counts) == 5_000
        assert final_state.is_valid()

    def test_trace_records_every_target(self):
        tables = make_tables()
        trace: list[int] = []
        _, final_state = tables.walk(State(0, 0), 250, RandomSource(9), trace=trace)
        assert len(trace) == 250
        assert decode_state(trace[-1]) == final_state
        assert all(decode_state(code).is_valid() for code in trace)

    def test_walk_matches_scalar_sampling(self):
        """The compiled walk visits exactly the transitions the scalar sampler picks."""
        tables = make_tables()
        trace: list[int] = []
        counts, _ = tables.walk(State(0, 0), 2_000, RandomSource(7), trace=trace)

        rng = RandomSource(7)
        state = State(0, 0)
        expected_trace = []
        expected_counts: dict[tuple[int, int, int], int] = {}
        for _ in range(2_000):
            transitions = list(transitions_from_state(state, PARAMS, max_lead=MAX_LEAD))
            draw = rng.uniform()
            cumulative = 0.0
            chosen = transitions[-1]
            for transition in transitions:
                cumulative += transition.rate
                if draw < cumulative:
                    chosen = transition
                    break
            key = chosen.encode()
            expected_counts[key] = expected_counts.get(key, 0) + 1
            state = chosen.target
            expected_trace.append(state.encode())
        assert trace == expected_trace
        got_counts = {
            tables.transition_at(index).encode(): count
            for index, count in enumerate(counts)
            if count
        }
        assert got_counts == expected_counts


class TestSettlement:
    def test_settle_matches_manual_accumulation(self):
        tables = make_tables()
        counts, _ = tables.walk(State(0, 0), 3_000, RandomSource(11))
        settlement = tables.settle(counts)
        schedule = EthereumByzantiumSchedule()
        pool_static = sum(
            count * transition_rewards(tables.transition_at(i), PARAMS, schedule).pool.static
            for i, count in enumerate(counts)
        )
        regular = sum(
            count * transition_rewards(tables.transition_at(i), PARAMS, schedule).regular_probability
            for i, count in enumerate(counts)
        )
        assert settlement.pool.static == pytest.approx(pool_static, rel=1e-12)
        assert settlement.regular_blocks == pytest.approx(regular, rel=1e-12)
        total = settlement.regular_blocks + settlement.uncle_blocks + settlement.stale_blocks
        assert total == pytest.approx(3_000, rel=1e-9)

    def test_distance_histograms_only_hold_visited_distances(self):
        tables = make_tables()
        counts, _ = tables.walk(State(0, 0), 3_000, RandomSource(2))
        settlement = tables.settle(counts)
        assert all(value > 0.0 for value in settlement.honest_uncle_distance_counts.values())
        assert all(value > 0.0 for value in settlement.pool_uncle_distance_counts.values())
        assert list(settlement.honest_uncle_distance_counts) == sorted(
            settlement.honest_uncle_distance_counts
        )

    def test_bitcoin_schedule_settles_without_uncles(self):
        tables = make_tables(schedule=BitcoinSchedule())
        counts, _ = tables.walk(State(0, 0), 2_000, RandomSource(5))
        settlement = tables.settle(counts)
        assert settlement.pool.uncle == 0.0
        assert settlement.honest.nephew == 0.0
        assert settlement.uncle_blocks == 0.0

    def test_describe_mentions_sizes(self):
        tables = make_tables()
        tables.row_for(State(0, 0))
        description = tables.describe()
        assert "states=1" in description
        assert "transitions=2" in description


class TestEncodingHooks:
    def test_state_codes_round_trip(self):
        for state in (State(0, 0), State(1, 0), State(1, 1), State(2, 0), State(7, 3), State(40, 0)):
            assert decode_state(state.encode()) == state

    def test_invalid_state_has_no_code(self):
        from repro.errors import StateSpaceError

        with pytest.raises(StateSpaceError):
            State(2, 1).encode()
        with pytest.raises(StateSpaceError):
            decode_state(-1)

    def test_transition_encode_triple(self):
        (first, second) = transitions_from_state(State(0, 0), PARAMS, max_lead=MAX_LEAD)
        assert first.encode() == (0, 0, 1)
        assert second.encode() == (0, 1, 2)
