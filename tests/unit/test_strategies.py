"""Unit tests for the pluggable mining-strategy layer."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ParameterError
from repro.params import MiningParams
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import RaceState
from repro.strategies import (
    Action,
    EqualForkStubbornStrategy,
    HonestStrategy,
    LeadEqualForkStubbornStrategy,
    LeadStubbornStrategy,
    MiningStrategy,
    RaceView,
    SelfishStrategy,
    available_strategies,
    make_strategy,
    register_strategy,
)

PARAMS = MiningParams(alpha=0.3, gamma=0.5)


def _registry_config() -> SimulationConfig:
    """A small run configuration for exercising configuration-aware factories."""
    return SimulationConfig(params=PARAMS, num_blocks=100, seed=1)


def race(private: int, published: int, public: int) -> RaceState:
    """A race view with the given ``(Ls, published, Lh)`` bookkeeping."""
    return RaceState(
        root_id=0,
        pool_branch=list(range(1, private + 1)),
        published_count=published,
        honest_branch=list(range(100, 100 + public)),
    )


class TestRegistry:
    def test_catalogue_is_registered(self):
        assert set(available_strategies()) >= {
            "honest",
            "selfish",
            "lead_stubborn",
            "equal_fork_stubborn",
            "lead_equal_fork_stubborn",
        }

    def test_make_strategy_returns_the_named_strategy(self):
        assert isinstance(make_strategy("selfish"), SelfishStrategy)
        assert isinstance(make_strategy("honest"), HonestStrategy)

    def test_unknown_name_rejected_with_catalogue(self):
        with pytest.raises(ParameterError, match="available"):
            make_strategy("nonsense")

    def test_unknown_name_error_lists_every_registered_strategy(self):
        with pytest.raises(ParameterError) as excinfo:
            make_strategy("nonsense")
        message = str(excinfo.value)
        assert "unknown mining strategy 'nonsense'" in message
        for name in available_strategies():
            assert name in message

    def test_unknown_name_in_config_error_lists_every_registered_strategy(self):
        with pytest.raises(ParameterError) as excinfo:
            SimulationConfig(params=PARAMS, num_blocks=10, strategy="nonsense")
        message = str(excinfo.value)
        for name in available_strategies():
            assert name in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ParameterError):
            register_strategy("selfish", SelfishStrategy)

    def test_strategies_satisfy_the_protocol(self):
        # A run configuration is passed through for configuration-aware
        # factories ("optimal" solves its policy per parameter point); the
        # stateless catalogue strategies ignore it.
        config = _registry_config()
        for name in available_strategies():
            strategy = make_strategy(name, config=config)
            assert isinstance(strategy, MiningStrategy)
            assert strategy.name == name

    def test_strategies_are_stateless_value_objects(self):
        config = _registry_config()
        for name in available_strategies():
            strategy = make_strategy(name, config=config)
            assert strategy == make_strategy(name, config=config)
            assert pickle.loads(pickle.dumps(strategy)) == strategy

    def test_race_state_satisfies_race_view(self):
        assert isinstance(race(2, 1, 1), RaceView)


class TestSelfishDecisions:
    """Algorithm 1 of the paper, expressed as pure decisions."""

    strategy = SelfishStrategy()

    def test_keeps_withholding_with_no_race(self):
        assert self.strategy.after_pool_block(race(1, 0, 0)) is Action.WITHHOLD
        assert self.strategy.after_pool_block(race(3, 0, 0)) is Action.WITHHOLD

    def test_takes_the_win_from_the_one_one_tie(self):
        assert self.strategy.after_pool_block(race(2, 1, 1)) is Action.OVERRIDE

    def test_races_on_from_longer_ties(self):
        # Algorithm 1 only takes the mining win from the 1-1 tie.
        assert self.strategy.after_pool_block(race(3, 2, 2)) is Action.WITHHOLD

    def test_adopts_when_behind(self):
        assert self.strategy.after_honest_block(race(0, 0, 1)) is Action.ADOPT
        assert self.strategy.after_honest_block(race(1, 1, 2)) is Action.ADOPT

    def test_matches_when_equal(self):
        assert self.strategy.after_honest_block(race(1, 0, 1)) is Action.MATCH
        assert self.strategy.after_honest_block(race(2, 1, 2)) is Action.MATCH

    def test_overrides_when_lead_shrinks_to_one(self):
        assert self.strategy.after_honest_block(race(2, 0, 1)) is Action.OVERRIDE
        assert self.strategy.after_honest_block(race(3, 1, 2)) is Action.OVERRIDE

    def test_publishes_one_when_lead_remains_large(self):
        assert self.strategy.after_honest_block(race(4, 0, 1)) is Action.PUBLISH
        assert self.strategy.after_honest_block(race(5, 1, 2)) is Action.PUBLISH


class TestHonestDecisions:
    strategy = HonestStrategy()

    def test_publishes_every_own_block_immediately(self):
        assert self.strategy.after_pool_block(race(1, 0, 0)) is Action.OVERRIDE

    def test_adopts_every_honest_block(self):
        assert self.strategy.after_honest_block(race(0, 0, 1)) is Action.ADOPT


class TestStubbornDecisions:
    def test_lead_stubborn_never_overrides_on_honest_blocks(self):
        strategy = LeadStubbornStrategy()
        # Where selfish would override (lead shrunk to one), L only matches.
        assert strategy.after_honest_block(race(2, 0, 1)) is Action.MATCH
        assert strategy.after_honest_block(race(3, 1, 2)) is Action.MATCH
        assert strategy.after_honest_block(race(4, 0, 1)) is Action.MATCH
        assert strategy.after_honest_block(race(0, 0, 1)) is Action.ADOPT
        # It still takes the win when its own block breaks the 1-1 tie.
        assert strategy.after_pool_block(race(2, 1, 1)) is Action.OVERRIDE

    def test_equal_fork_stubborn_keeps_racing_from_the_tie(self):
        strategy = EqualForkStubbornStrategy()
        # Where selfish would take the win from the 1-1 tie, F keeps withholding.
        assert strategy.after_pool_block(race(2, 1, 1)) is Action.WITHHOLD
        # Its honest-block reactions are Algorithm 1's.
        assert strategy.after_honest_block(race(2, 0, 1)) is Action.OVERRIDE
        assert strategy.after_honest_block(race(1, 0, 1)) is Action.MATCH
        assert strategy.after_honest_block(race(0, 0, 1)) is Action.ADOPT

    def test_lead_equal_fork_combines_both_deviations(self):
        strategy = LeadEqualForkStubbornStrategy()
        assert strategy.after_pool_block(race(2, 1, 1)) is Action.WITHHOLD
        assert strategy.after_honest_block(race(2, 0, 1)) is Action.MATCH
        assert strategy.after_honest_block(race(0, 0, 1)) is Action.ADOPT


class TestEngineConstraint:
    def test_unmatched_honest_branch_raises_a_named_error(self):
        """A strategy that withholds through honest blocks (trail-stubborn style)
        is not supported by the current engine; the violation must surface as a
        clear error naming the strategy, not as silent corruption."""
        from dataclasses import dataclass

        from repro.errors import SimulationError
        from repro.simulation.engine import ChainSimulator

        @dataclass(frozen=True)
        class TrailStubbornLike:
            name: str = "trail_stubborn_like"

            def after_pool_block(self, race) -> Action:
                return Action.WITHHOLD

            def after_honest_block(self, race) -> Action:
                return Action.WITHHOLD

        config = SimulationConfig(params=MiningParams(alpha=0.3, gamma=0.5), num_blocks=50, seed=1)
        simulator = ChainSimulator(config, strategy=TrailStubbornLike())
        with pytest.raises(SimulationError, match="trail_stubborn_like"):
            simulator.run()


class TestConfigIntegration:
    def test_strategy_field_resolves(self):
        config = SimulationConfig(params=PARAMS, strategy="lead_stubborn")
        assert config.strategy_name == "lead_stubborn"
        assert isinstance(config.make_strategy(), LeadStubbornStrategy)

    def test_selfish_flag_remains_a_working_alias(self):
        assert SimulationConfig(params=PARAMS).strategy_name == "selfish"
        with pytest.warns(DeprecationWarning, match="'selfish' flag"):
            assert SimulationConfig(params=PARAMS, selfish=False).strategy_name == "honest"
        with pytest.warns(DeprecationWarning, match="'selfish' flag"):
            assert SimulationConfig(params=PARAMS, selfish=True).strategy_name == "selfish"

    def test_explicit_strategy_wins_over_default_flag(self):
        config = SimulationConfig(params=PARAMS, strategy="honest")
        assert config.strategy_name == "honest"
        assert isinstance(config.make_strategy(), HonestStrategy)

    def test_conflicting_flag_and_strategy_rejected(self):
        with pytest.raises(ParameterError, match="conflicts"):
            SimulationConfig(params=PARAMS, selfish=False, strategy="selfish")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ParameterError, match="unknown mining strategy"):
            SimulationConfig(params=PARAMS, strategy="quantum")

    def test_with_strategy_keeps_other_fields(self):
        config = SimulationConfig(params=PARAMS, num_blocks=500, seed=3)
        copy = config.with_strategy("equal_fork_stubborn")
        assert copy.strategy_name == "equal_fork_stubborn"
        assert copy.num_blocks == 500
        assert copy.seed == 3

    def test_describe_mentions_the_strategy(self):
        text = SimulationConfig(params=PARAMS, strategy="lead_stubborn").describe()
        assert "lead_stubborn" in text
