"""Unit tests for multi-run orchestration."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.params import MiningParams
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import (
    compare_backends,
    honest_baseline_config,
    run_many,
    run_many_grid,
    run_once,
    sequential_seeds,
    simulate_alpha_sweep,
    simulate_strategy_sweep,
)

CONFIG = SimulationConfig(params=MiningParams(alpha=0.3, gamma=0.5), num_blocks=3000, seed=5)


class TestRunOnce:
    def test_chain_backend(self):
        result = run_once(CONFIG, backend="chain")
        assert result.total_blocks == CONFIG.num_blocks

    def test_markov_backend(self):
        result = run_once(CONFIG, backend="markov")
        assert result.total_blocks == CONFIG.num_blocks

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError):
            run_once(CONFIG, backend="quantum")


class TestRunMany:
    def test_aggregates_the_requested_number_of_runs(self):
        aggregate = run_many(CONFIG, 3, backend="markov")
        assert aggregate.num_runs == 3

    def test_reproducible_from_master_seed(self):
        first = run_many(CONFIG, 2, backend="markov")
        second = run_many(CONFIG, 2, backend="markov")
        assert first.pool_absolute_scenario1.mean == pytest.approx(second.pool_absolute_scenario1.mean)

    def test_runs_use_distinct_seeds(self):
        aggregate = run_many(CONFIG, 3, backend="markov")
        seeds = {result.config.seed for result in aggregate.results}
        assert len(seeds) == 3

    def test_zero_runs_rejected(self):
        with pytest.raises(SimulationError):
            run_many(CONFIG, 0)

    def test_parallel_matches_serial(self):
        serial = run_many(CONFIG, 2, backend="markov")
        parallel = run_many(CONFIG, 2, backend="markov", max_workers=2)
        assert serial.relative_pool_revenue == parallel.relative_pool_revenue
        assert [r.config.seed for r in serial.results] == [r.config.seed for r in parallel.results]

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(SimulationError):
            run_many(CONFIG, 2, max_workers=-1)

    def test_excess_workers_are_capped_to_runs(self):
        aggregate = run_many(CONFIG, 2, backend="markov", max_workers=16)
        assert aggregate.num_runs == 2

    def test_grid_matches_per_cell_run_many(self):
        cells = [CONFIG.with_seed(5), CONFIG.with_seed(9)]
        grid = run_many_grid(cells, 2, backend="markov")
        for cell, aggregate in zip(cells, grid):
            expected = run_many(cell, 2, backend="markov")
            assert aggregate.relative_pool_revenue == expected.relative_pool_revenue
            assert [r.config.seed for r in aggregate.results] == [
                r.config.seed for r in expected.results
            ]

    def test_grid_parallelises_across_cells_with_single_runs(self):
        # One run per cell: the flat fan-out must still dispatch both cells to the
        # pool and return them in input order, bit-identical to serial.
        cells = [CONFIG.with_seed(5), CONFIG.with_seed(9)]
        serial = run_many_grid(cells, 1, backend="markov")
        parallel = run_many_grid(cells, 1, backend="markov", max_workers=2)
        for serial_cell, parallel_cell in zip(serial, parallel):
            assert serial_cell.relative_pool_revenue == parallel_cell.relative_pool_revenue


class TestSweepAndHelpers:
    def test_simulated_alpha_sweep_covers_grid(self):
        sweep = simulate_alpha_sweep([0.1, 0.3], CONFIG, num_runs=1, backend="markov")
        assert sweep.alphas == [0.1, 0.3]
        assert len(sweep.pool_absolute_scenario1()) == 2
        assert sweep.gamma == 0.5

    def test_pool_revenue_increases_along_the_sweep(self):
        sweep = simulate_alpha_sweep([0.1, 0.4], CONFIG, num_runs=1, backend="markov")
        values = sweep.pool_absolute_scenario1()
        assert values[1] > values[0]

    def test_compare_backends_returns_every_backend(self):
        small = SimulationConfig(params=MiningParams(alpha=0.3, gamma=0.5), num_blocks=1500, seed=2)
        results = compare_backends(small, num_runs=1)
        assert set(results) == {"chain", "markov", "network"}

    def test_honest_baseline_config_switches_strategy_only(self):
        baseline = honest_baseline_config(CONFIG)
        assert baseline.selfish is None
        assert baseline.strategy_name == "honest"
        assert baseline.params == CONFIG.params
        assert baseline.num_blocks == CONFIG.num_blocks

    def test_strategy_sweep_covers_requested_strategies(self):
        small = SimulationConfig(params=MiningParams(alpha=0.35, gamma=0.5), num_blocks=1200, seed=3)
        results = simulate_strategy_sweep(("honest", "selfish"), small, num_runs=1)
        assert set(results) == {"honest", "selfish"}
        assert results["honest"].stale_fraction.mean == 0.0
        assert results["selfish"].stale_fraction.mean >= 0.0

    def test_sequential_seeds_are_deterministic_and_distinct(self):
        first = sequential_seeds(42, 4)
        second = sequential_seeds(42, 4)
        assert list(first) == list(second)
        assert len(set(first)) == 4
