"""Unit tests for :mod:`repro.params`."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.params import MiningParams


class TestMiningParamsValidation:
    def test_valid_point_is_stored(self):
        params = MiningParams(alpha=0.3, gamma=0.7)
        assert params.alpha == 0.3
        assert params.gamma == 0.7

    def test_beta_is_complement_of_alpha(self):
        params = MiningParams(alpha=0.3, gamma=0.5)
        assert params.beta == pytest.approx(0.7)

    def test_default_gamma_is_uniform_tie_breaking(self):
        assert MiningParams(alpha=0.2).gamma == 0.5

    @pytest.mark.parametrize("alpha", [-0.1, 1.2, float("nan")])
    def test_alpha_outside_unit_interval_rejected(self, alpha):
        with pytest.raises(ParameterError):
            MiningParams(alpha=alpha, gamma=0.5)

    @pytest.mark.parametrize("alpha", [0.5, 0.6, 0.9])
    def test_alpha_at_or_above_one_half_rejected(self, alpha):
        with pytest.raises(ParameterError):
            MiningParams(alpha=alpha, gamma=0.5)

    @pytest.mark.parametrize("gamma", [-0.01, 1.01, float("nan")])
    def test_gamma_outside_unit_interval_rejected(self, gamma):
        with pytest.raises(ParameterError):
            MiningParams(alpha=0.3, gamma=gamma)

    @pytest.mark.parametrize("gamma", [0.0, 0.5, 1.0])
    def test_gamma_boundaries_accepted(self, gamma):
        assert MiningParams(alpha=0.3, gamma=gamma).gamma == gamma

    def test_alpha_zero_accepted(self):
        assert MiningParams(alpha=0.0, gamma=0.5).alpha == 0.0

    def test_non_numeric_alpha_rejected(self):
        with pytest.raises(ParameterError):
            MiningParams(alpha="a lot", gamma=0.5)  # type: ignore[arg-type]


class TestMiningParamsBehaviour:
    def test_frozen(self):
        params = MiningParams(alpha=0.3, gamma=0.5)
        with pytest.raises(AttributeError):
            params.alpha = 0.4  # type: ignore[misc]

    def test_tie_breaking_rates_split_beta(self):
        params = MiningParams(alpha=0.3, gamma=0.2)
        assert params.honest_on_pool_branch_rate == pytest.approx(0.7 * 0.2)
        assert params.honest_on_honest_branch_rate == pytest.approx(0.7 * 0.8)
        assert params.honest_on_pool_branch_rate + params.honest_on_honest_branch_rate == pytest.approx(
            params.beta
        )

    def test_with_alpha_keeps_gamma(self):
        params = MiningParams(alpha=0.3, gamma=0.8)
        assert params.with_alpha(0.1) == MiningParams(alpha=0.1, gamma=0.8)

    def test_with_gamma_keeps_alpha(self):
        params = MiningParams(alpha=0.3, gamma=0.8)
        assert params.with_gamma(0.1) == MiningParams(alpha=0.3, gamma=0.1)

    def test_with_alpha_validates(self):
        with pytest.raises(ParameterError):
            MiningParams(alpha=0.3, gamma=0.5).with_alpha(0.7)

    def test_describe_mentions_all_parameters(self):
        text = MiningParams(alpha=0.25, gamma=0.75).describe()
        assert "0.25" in text and "0.75" in text and "beta" in text

    def test_equality_and_hash(self):
        assert MiningParams(0.3, 0.5) == MiningParams(0.3, 0.5)
        assert hash(MiningParams(0.3, 0.5)) == hash(MiningParams(0.3, 0.5))
        assert MiningParams(0.3, 0.5) != MiningParams(0.3, 0.6)
