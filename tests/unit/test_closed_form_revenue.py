"""Unit tests for the literal closed-form revenue expressions (Eqs. 3-9)."""

from __future__ import annotations

import pytest

from repro.analysis.closed_form_revenue import (
    closed_form_revenue,
    honest_static_revenue,
    honest_uncle_revenue,
    pool_static_revenue,
    pool_uncle_revenue,
)
from repro.errors import ParameterError
from repro.params import MiningParams
from repro.rewards.schedule import EthereumByzantiumSchedule, FlatUncleSchedule

SCHEDULE = EthereumByzantiumSchedule()


class TestStaticRewardFormulas:
    # The case engine truncates the state space at max_lead=60 (see conftest), which
    # leaves a residual of up to ~1e-5 at the heaviest-tailed parameter points; the
    # exact closed forms are compared with that tolerance.
    @pytest.mark.parametrize("alpha,gamma", [(0.1, 0.5), (0.3, 0.0), (0.4, 0.9), (0.45, 0.5)])
    def test_static_rewards_match_case_engine(self, ethereum_model, alpha, gamma):
        params = MiningParams(alpha=alpha, gamma=gamma)
        rates = ethereum_model.revenue_rates(params)
        assert pool_static_revenue(params) == pytest.approx(rates.pool.static, abs=2e-5)
        assert honest_static_revenue(params) == pytest.approx(rates.honest.static, abs=2e-5)

    def test_static_rewards_sum_below_one(self):
        params = MiningParams(alpha=0.35, gamma=0.5)
        assert pool_static_revenue(params) + honest_static_revenue(params) < 1.0

    def test_alpha_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            pool_static_revenue(MiningParams(alpha=0.0, gamma=0.5))


class TestUncleRewardFormulas:
    @pytest.mark.parametrize("alpha,gamma", [(0.2, 0.5), (0.35, 0.3), (0.45, 0.7)])
    def test_pool_uncle_reward_matches_case_engine(self, ethereum_model, alpha, gamma):
        params = MiningParams(alpha=alpha, gamma=gamma)
        rates = ethereum_model.revenue_rates(params)
        assert pool_uncle_revenue(params, SCHEDULE) == pytest.approx(rates.pool.uncle, abs=2e-5)

    @pytest.mark.parametrize("alpha,gamma", [(0.2, 0.5), (0.3, 0.5), (0.4, 0.3)])
    def test_honest_uncle_reward_matches_case_engine(self, ethereum_model, alpha, gamma):
        # Eq. (6) does include the (i, 0) contributions, so it should agree with the
        # complete case analysis up to sum truncation.
        params = MiningParams(alpha=alpha, gamma=gamma)
        rates = ethereum_model.revenue_rates(params)
        value = honest_uncle_revenue(params, SCHEDULE, truncation=40)
        assert value == pytest.approx(rates.honest.uncle, abs=1e-6)

    def test_pool_uncle_reward_vanishes_at_gamma_one(self):
        assert pool_uncle_revenue(MiningParams(alpha=0.3, gamma=1.0), SCHEDULE) == pytest.approx(0.0)


class TestFullEvaluation:
    def test_components_assemble_into_totals(self):
        params = MiningParams(alpha=0.3, gamma=0.5)
        result = closed_form_revenue(params, SCHEDULE, truncation=30)
        assert result.pool_total == pytest.approx(
            result.pool_static + result.pool_uncle + result.pool_nephew
        )
        assert result.total == pytest.approx(result.pool_total + result.honest_total)
        assert 0.0 < result.relative_pool_revenue < 1.0

    def test_default_schedule_is_ethereum(self):
        params = MiningParams(alpha=0.3, gamma=0.5)
        assert closed_form_revenue(params).pool_uncle == pytest.approx(
            closed_form_revenue(params, SCHEDULE).pool_uncle
        )

    def test_nephew_terms_close_to_case_engine(self, ethereum_model):
        # The printed Eqs. (8)-(9) omit the (i, 0)-state nephew terms; the discrepancy
        # against the complete case engine should be small but may be non-zero.  The
        # nephew reward itself is only 1/32 of the static reward, so we check the gap
        # is bounded by that scale rather than exact agreement.
        params = MiningParams(alpha=0.35, gamma=0.5)
        rates = ethereum_model.revenue_rates(params)
        result = closed_form_revenue(params, SCHEDULE, truncation=40)
        assert abs(result.pool_nephew - rates.pool.nephew) < 1 / 32
        assert abs(result.honest_nephew - rates.honest.nephew) < 1 / 32

    def test_flat_schedule_changes_only_uncle_and_nephew_terms(self):
        params = MiningParams(alpha=0.3, gamma=0.5)
        ethereum = closed_form_revenue(params, SCHEDULE, truncation=25)
        flat = closed_form_revenue(params, FlatUncleSchedule(0.5), truncation=25)
        assert ethereum.pool_static == pytest.approx(flat.pool_static)
        assert ethereum.honest_static == pytest.approx(flat.honest_static)
        assert ethereum.pool_uncle != pytest.approx(flat.pool_uncle)
