"""Unit tests for the ``sweep``/``store`` CLI subcommands and cache-dir plumbing."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.cli import (
    ExperimentOptions,
    build_parser,
    main,
    run_store,
    run_sweep,
)
from repro.store import ResultStore


def scenario_file(tmp_path, **overrides):
    data = {
        "name": "cli-sweep",
        "alphas": [0.2, 0.35],
        "strategies": ["honest", "selfish"],
        "backends": ["markov"],
        "num_runs": 1,
        "num_blocks": 1000,
        "seed": 7,
    }
    data.update(overrides)
    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(data))
    return path


class TestParser:
    def test_sweep_subcommand_with_scenario_and_flags(self, tmp_path):
        arguments = build_parser().parse_args(
            ["sweep", "scenario.json", "--cache-dir", "cache", "--resume", "--max-cells", "2"]
        )
        assert arguments.experiment == "sweep"
        assert arguments.scenario == "scenario.json"
        assert str(arguments.cache_dir) == "cache"
        assert arguments.resume is True
        assert arguments.max_cells == 2

    def test_cache_dir_accepted_on_every_subcommand(self):
        arguments = build_parser().parse_args(["figure8", "--cache-dir", "cache"])
        assert str(arguments.cache_dir) == "cache"
        assert build_parser().parse_args(["figure8"]).cache_dir is None

    def test_options_store_resolution(self, tmp_path):
        assert ExperimentOptions().store() is None
        store = ExperimentOptions(cache_dir=tmp_path / "cache").store()
        assert isinstance(store, ResultStore)

    def test_resilience_flags_parse_on_every_subcommand(self):
        arguments = build_parser().parse_args(
            ["figure8", "--timeout", "2.5", "--retries", "0", "--fail-fast"]
        )
        assert arguments.timeout == 2.5
        assert arguments.retries == 0
        assert arguments.fail_fast is True
        defaults = build_parser().parse_args(["sweep", "scenario.json"])
        assert defaults.timeout is None
        assert defaults.retries is None
        assert defaults.fail_fast is False

    @pytest.mark.parametrize(
        "argv",
        [
            ["sweep", "s.json", "--timeout", "0"],
            ["sweep", "s.json", "--timeout", "-1"],
            ["sweep", "s.json", "--retries", "-1"],
        ],
    )
    def test_invalid_resilience_values_exit_with_usage_error(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2

    def test_options_resilience_resolution(self):
        from repro.utils.resilient import RetryPolicy

        assert ExperimentOptions().resilience() is None
        policy = ExperimentOptions(timeout=3.0, fail_fast=True).resilience()
        assert isinstance(policy, RetryPolicy)
        assert policy.timeout == 3.0
        assert policy.retries == 2  # package default preserved
        assert policy.fail_fast is True
        assert ExperimentOptions(retries=0).resilience().retries == 0


class TestRunSweep:
    def test_end_to_end_report(self, tmp_path):
        report = run_sweep(scenario_file(tmp_path), cache_dir=tmp_path / "cache")
        assert "cli-sweep" in report
        assert "4 runs executed, 0 from cache" in report
        warm = run_sweep(scenario_file(tmp_path), cache_dir=tmp_path / "cache")
        assert "0 runs executed, 4 from cache" in warm

    def test_max_cells_leaves_cells_pending(self, tmp_path):
        report = run_sweep(
            scenario_file(tmp_path), cache_dir=tmp_path / "cache", max_cells=1
        )
        assert "3 cells pending" in report
        assert "pending" in report

    def test_missing_scenario_argument_rejected(self):
        with pytest.raises(ExperimentError, match="needs a scenario file"):
            run_sweep(None)

    def test_resume_requires_cache_dir(self, tmp_path):
        with pytest.raises(ExperimentError, match="--resume needs --cache-dir"):
            run_sweep(scenario_file(tmp_path), resume=True)

    def test_resume_requires_existing_directory(self, tmp_path):
        with pytest.raises(ExperimentError, match="existing cache directory"):
            run_sweep(
                scenario_file(tmp_path), cache_dir=tmp_path / "absent", resume=True
            )

    def test_resume_with_existing_directory(self, tmp_path):
        cache = tmp_path / "cache"
        run_sweep(scenario_file(tmp_path), cache_dir=cache, max_cells=2)
        report = run_sweep(scenario_file(tmp_path), cache_dir=cache, resume=True)
        assert "0 cells pending" in report


class TestRejectedFlagCombinations:
    """Flags only one branch honours are rejected, never silently dropped."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["figure8", "scenario.toml"],
            ["figure8", "--resume"],
            ["table1", "--max-cells", "2"],
            ["sweep", "scenario.json", "--fast"],
            ["sweep", "scenario.json", "--backend", "markov"],
            ["sweep", "scenario.json", "--namespace", "simulation"],
            ["figure8", "--namespace", "simulation"],
            ["store"],  # missing action
            ["store", "compact", "--fast"],
            ["store", "compact", "--backend", "markov"],
            ["store", "compact", "--resume"],
            ["store", "compact", "--max-cells", "2"],
            ["store", "compact", "--profile"],
            ["table1", "--profile"],
            ["figure6", "--profile", "stats.prof"],
            ["all", "--profile"],
        ],
    )
    def test_mismatched_flags_exit_with_usage_error(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2


class TestProfile:
    def test_parser_accepts_bare_and_file_forms(self):
        assert build_parser().parse_args(["figure8"]).profile is None
        assert build_parser().parse_args(["figure8", "--profile"]).profile == ""
        arguments = build_parser().parse_args(["figure8", "--profile", "stats.prof"])
        assert arguments.profile == "stats.prof"

    def test_profiled_sweep_prints_stats_and_dumps_file(self, tmp_path, capsys):
        import pstats

        dump = tmp_path / "sweep.prof"
        exit_code = main(
            [
                "sweep",
                str(scenario_file(tmp_path)),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--profile",
                str(dump),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        # The report stays on stdout; the profile goes to stderr.
        assert "cli-sweep" in captured.out
        assert "cumulative" in captured.err
        assert "run_scenario" in captured.err
        # The dump is loadable raw-stats data, not text.
        assert pstats.Stats(str(dump)).total_calls > 0

    def test_bare_profile_prints_without_dumping(self, tmp_path, capsys):
        exit_code = main(
            [
                "sweep",
                str(scenario_file(tmp_path)),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--profile",
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "cumulative" in captured.err
        assert "dumped to" not in captured.err


class TestRunStore:
    def test_unknown_action_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="unknown store action"):
            run_store("defragment", cache_dir=tmp_path)

    def test_cache_dir_required(self):
        with pytest.raises(ExperimentError, match="needs --cache-dir"):
            run_store("compact", cache_dir=None)

    def test_cache_dir_must_exist(self, tmp_path):
        # A typo should fail loudly, not create and maintain an empty store.
        with pytest.raises(ExperimentError, match="existing cache directory"):
            run_store("stats", cache_dir=tmp_path / "absent")

    def test_compact_then_stats_then_vacuum(self, tmp_path):
        cache = tmp_path / "cache"
        run_sweep(scenario_file(tmp_path), cache_dir=cache)
        compacted = run_store("compact", cache_dir=cache)
        assert "packed 4 loose entries" in compacted
        stats = run_store("stats", cache_dir=cache)
        assert "simulation" in stats
        vacuumed = run_store("vacuum", cache_dir=cache)
        assert "0 invalid entries" in vacuumed
        # The compacted store still answers the sweep entirely from cache.
        warm = run_sweep(scenario_file(tmp_path), cache_dir=cache)
        assert "0 runs executed, 4 from cache" in warm

    def test_namespace_restriction_passes_through(self, tmp_path):
        cache = tmp_path / "cache"
        run_sweep(scenario_file(tmp_path), cache_dir=cache)
        report = run_store("compact", cache_dir=cache, namespace="policy")
        assert "packed 0 loose entries" in report  # nothing in 'policy'
        # The simulation namespace was left alone.
        assert ResultStore(cache).stats("simulation")[0].loose_entries == 4


class TestMain:
    def test_main_runs_sweep(self, tmp_path, capsys):
        path = scenario_file(tmp_path)
        exit_code = main(
            ["sweep", str(path), "--cache-dir", str(tmp_path / "cache")]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "==== sweep" in output
        assert "cli-sweep" in output

    def test_main_runs_store_compact(self, tmp_path, capsys):
        path = scenario_file(tmp_path)
        cache = tmp_path / "cache"
        assert main(["sweep", str(path), "--cache-dir", str(cache)]) == 0
        exit_code = main(["store", "compact", "--cache-dir", str(cache)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "==== store compact" in output
        assert "packed 4 loose entries" in output


class TestSweepDegradedMode:
    def test_exhausted_run_becomes_failed_cell_not_crash(self, tmp_path, capsys):
        from repro.testing import FaultSpec, inject_faults

        path = scenario_file(tmp_path)
        plan = tuple(
            FaultSpec(kind="raise", task=0, attempt=attempt) for attempt in range(3)
        )
        with inject_faults(plan):
            exit_code = main(
                [
                    "sweep",
                    str(path),
                    "--cache-dir",
                    str(tmp_path / "cache"),
                    "--retries",
                    "2",
                ]
            )
        assert exit_code == 0  # settled cells are reported, not thrown away
        output = capsys.readouterr().out
        assert "FAILED" in output
        assert "failed (1)" in output

        # The failed run was not persisted: a plain resume completes the sweep.
        resumed = run_sweep(path, cache_dir=tmp_path / "cache")
        assert "1 runs executed, 3 from cache" in resumed

    def test_fail_fast_raises_instead_of_degrading(self, tmp_path):
        from repro.errors import RetryExhaustedError
        from repro.testing import FaultSpec, inject_faults

        path = scenario_file(tmp_path)
        plan = tuple(
            FaultSpec(kind="raise", task=0, attempt=attempt) for attempt in range(2)
        )
        with inject_faults(plan):
            with pytest.raises(RetryExhaustedError):
                run_sweep(
                    path,
                    cache_dir=tmp_path / "cache",
                    retries=1,
                    fail_fast=True,
                )


class TestEngineHelpers:
    def test_find_filters_by_coordinates(self, tmp_path):
        from repro.scenarios import ScenarioSpec, run_scenario

        spec = ScenarioSpec(
            name="find",
            alphas=(0.2, 0.35),
            strategies=("honest", "selfish"),
            backends=("markov",),
            num_blocks=1000,
            seed=7,
        )
        result = run_scenario(spec)
        honest = result.find(strategy="honest")
        assert len(honest) == 2
        assert all(o.cell.strategy == "honest" for o in honest)
        single = result.find(strategy="selfish", alpha=0.35)
        assert len(single) == 1
        assert result.find(strategy="selfish", alpha=0.99) == ()

    def test_complete_flag(self, tmp_path):
        from repro.scenarios import ScenarioSpec, run_scenario
        from repro.store import ResultStore

        spec = ScenarioSpec(name="c", alphas=(0.2, 0.3), backends=("markov",), num_blocks=1000)
        partial = run_scenario(spec, store=ResultStore(tmp_path / "s"), max_cells=1)
        assert not partial.complete
        assert run_scenario(spec).complete

    def test_cell_outcome_state_trichotomy(self, tmp_path):
        """skipped, failed and settled are mutually exclusive cell states."""
        from repro.scenarios import ScenarioSpec, run_scenario
        from repro.testing import FaultSpec, inject_faults
        from repro.utils.resilient import RetryPolicy

        spec = ScenarioSpec(
            name="tri", alphas=(0.2, 0.3, 0.4), backends=("markov",), num_blocks=1000
        )
        plan = tuple(
            FaultSpec(kind="raise", task=0, attempt=attempt) for attempt in range(2)
        )
        with inject_faults(plan):
            result = run_scenario(
                spec,
                store=ResultStore(tmp_path / "s"),
                max_cells=2,
                policy=RetryPolicy(retries=1, backoff_base=0.0),
                on_failure="record",
            )
        states = [(o.skipped, o.failed, o.aggregate is not None) for o in result.cells]
        assert states == [(False, True, False), (False, False, True), (True, False, False)]
        assert result.failed_cells == 1 and result.skipped_cells == 1
        with pytest.raises(ExperimentError, match="1 cells failed"):
            result.aggregates()
