"""Unit tests for the Appendix-B reward-case engine."""

from __future__ import annotations

import pytest

from repro.analysis.reward_cases import transition_rewards
from repro.markov.state import State
from repro.markov.transitions import TransitionKind, transitions_from_state
from repro.params import MiningParams
from repro.rewards.schedule import BitcoinSchedule, EthereumByzantiumSchedule

PARAMS = MiningParams(alpha=0.3, gamma=0.4)
SCHEDULE = EthereumByzantiumSchedule()
ALPHA, BETA, GAMMA = PARAMS.alpha, PARAMS.beta, PARAMS.gamma


def record_for(state: State, kind: TransitionKind, params: MiningParams = PARAMS, schedule=SCHEDULE):
    transitions = [t for t in transitions_from_state(state, params, max_lead=100) if t.kind is kind]
    assert len(transitions) == 1, f"expected exactly one {kind} transition out of {state}"
    return transition_rewards(transitions[0], params, schedule)


class TestCase1HonestExtendsConsensus:
    def test_honest_block_is_regular_and_earns_static_reward(self):
        record = record_for(State(0, 0), TransitionKind.HONEST_EXTENDS_CONSENSUS)
        assert record.regular_probability == 1.0
        assert record.uncle_probability == 0.0
        assert record.honest.static == pytest.approx(SCHEDULE.static_reward)
        assert record.pool.total == 0.0
        assert record.pool_mined_probability == 0.0


class TestCase2PoolHidesFirstBlock:
    def test_destiny_probabilities(self):
        record = record_for(State(0, 0), TransitionKind.POOL_HIDES_FIRST_BLOCK)
        expected_regular = ALPHA + ALPHA * BETA + BETA**2 * GAMMA
        assert record.regular_probability == pytest.approx(expected_regular)
        assert record.uncle_probability == pytest.approx(BETA**2 * (1 - GAMMA))
        assert record.regular_probability + record.uncle_probability == pytest.approx(1.0)

    def test_rewards_split(self):
        record = record_for(State(0, 0), TransitionKind.POOL_HIDES_FIRST_BLOCK)
        assert record.pool.static == pytest.approx(record.regular_probability)
        assert record.pool.uncle == pytest.approx(SCHEDULE.uncle_reward(1) * record.uncle_probability)
        assert record.honest.nephew == pytest.approx(SCHEDULE.nephew_reward(1) * record.uncle_probability)
        assert record.pool.nephew == 0.0
        assert record.uncle_distance == 1


class TestCase4HonestForcesTie:
    def test_destiny_probabilities(self):
        record = record_for(State(1, 0), TransitionKind.HONEST_FORCES_TIE)
        assert record.regular_probability == pytest.approx(BETA * (1 - GAMMA))
        assert record.uncle_probability == pytest.approx(ALPHA + BETA * GAMMA)

    def test_nephew_reward_split_between_pool_and_honest(self):
        record = record_for(State(1, 0), TransitionKind.HONEST_FORCES_TIE)
        nephew = SCHEDULE.nephew_reward(1)
        assert record.pool.nephew == pytest.approx(nephew * ALPHA)
        assert record.honest.nephew == pytest.approx(nephew * BETA * GAMMA)
        assert record.honest.uncle == pytest.approx(SCHEDULE.uncle_reward(1) * (ALPHA + BETA * GAMMA))


class TestCase5TieResolved:
    def test_static_reward_split_by_hash_power(self):
        record = record_for(State(1, 1), TransitionKind.TIE_RESOLVED)
        assert record.pool.static == pytest.approx(ALPHA)
        assert record.honest.static == pytest.approx(BETA)
        assert record.pool_mined_probability == pytest.approx(ALPHA)
        assert record.regular_probability == 1.0


class TestPoolLeadCases:
    @pytest.mark.parametrize(
        "state,kind",
        [
            (State(1, 0), TransitionKind.POOL_BUILDS_LEAD_OF_TWO),
            (State(4, 1), TransitionKind.POOL_EXTENDS_PRIVATE_LEAD),
            (State(2, 0), TransitionKind.POOL_EXTENDS_PRIVATE_LEAD),
        ],
    )
    def test_pool_blocks_on_a_lead_are_regular_with_certainty(self, state, kind):
        record = record_for(state, kind)
        assert record.regular_probability == 1.0
        assert record.pool.static == pytest.approx(SCHEDULE.static_reward)
        assert record.honest.total == 0.0


class TestHonestUncleCases:
    def test_lead_two_fork_uncle_distance_is_two(self):
        record = record_for(State(4, 2), TransitionKind.HONEST_ON_PREFIX_LEAD_TWO)
        assert record.uncle_distance == 2
        assert record.uncle_probability == 1.0
        assert record.honest.uncle == pytest.approx(SCHEDULE.uncle_reward(2))

    def test_lead_two_from_i0_matches_fork_case(self):
        fork = record_for(State(4, 2), TransitionKind.HONEST_ON_PREFIX_LEAD_TWO)
        no_fork = record_for(State(2, 0), TransitionKind.HONEST_CLOSES_LEAD_TWO)
        assert no_fork.honest.uncle == pytest.approx(fork.honest.uncle)
        assert no_fork.pool.nephew == pytest.approx(fork.pool.nephew)
        assert no_fork.honest.nephew == pytest.approx(fork.honest.nephew)

    def test_long_lead_fork_distance_is_the_lead(self):
        record = record_for(State(7, 3), TransitionKind.HONEST_ON_PREFIX_LONG_LEAD)
        assert record.uncle_distance == 4
        assert record.honest.uncle == pytest.approx(SCHEDULE.uncle_reward(4))

    def test_long_lead_without_fork_distance_is_private_length(self):
        record = record_for(State(5, 0), TransitionKind.HONEST_FORKS_LONG_LEAD)
        assert record.uncle_distance == 5
        assert record.honest.uncle == pytest.approx(SCHEDULE.uncle_reward(5))

    def test_nephew_probability_formula(self):
        record = record_for(State(5, 0), TransitionKind.HONEST_FORKS_LONG_LEAD)
        distance = 5
        honest_probability = BETA ** (distance - 1) * (1 + ALPHA * BETA * (1 - GAMMA))
        nephew = SCHEDULE.nephew_reward(distance)
        assert record.honest.nephew == pytest.approx(nephew * honest_probability)
        assert record.pool.nephew == pytest.approx(nephew * (1 - honest_probability))

    def test_distance_beyond_window_earns_nothing_but_is_still_stale(self):
        record = record_for(State(9, 0), TransitionKind.HONEST_FORKS_LONG_LEAD)
        assert record.uncle_distance == 9
        assert record.uncle_probability == 0.0  # not includable => not a referenced uncle
        assert record.honest.uncle == 0.0
        assert record.honest.nephew == 0.0
        assert record.pool.nephew == 0.0


class TestLosingHonestBranchCases:
    @pytest.mark.parametrize(
        "state,kind",
        [
            (State(6, 2), TransitionKind.HONEST_ON_HONEST_BRANCH),
            (State(4, 2), TransitionKind.HONEST_ON_HONEST_LEAD_TWO),
        ],
    )
    def test_no_rewards_at_all(self, state, kind):
        record = record_for(state, kind)
        assert record.pool.total == 0.0
        assert record.honest.total == 0.0
        assert record.regular_probability == 0.0
        assert record.uncle_probability == 0.0
        assert record.stale_probability == 1.0


class TestConservationAndSchedules:
    def test_destiny_probabilities_never_exceed_one(self):
        for state in [State(0, 0), State(1, 0), State(1, 1), State(2, 0), State(5, 0), State(6, 2), State(4, 2)]:
            for transition in transitions_from_state(state, PARAMS, max_lead=100):
                record = transition_rewards(transition, PARAMS, SCHEDULE)
                assert 0.0 <= record.regular_probability <= 1.0
                assert 0.0 <= record.uncle_probability <= 1.0
                assert record.regular_probability + record.uncle_probability <= 1.0 + 1e-12

    def test_bitcoin_schedule_removes_uncle_and_nephew_rewards(self):
        bitcoin = BitcoinSchedule()
        for state in [State(0, 0), State(1, 0), State(2, 0), State(6, 2)]:
            for transition in transitions_from_state(state, PARAMS, max_lead=100):
                record = transition_rewards(transition, PARAMS, bitcoin)
                assert record.pool.uncle == record.honest.uncle == 0.0
                assert record.pool.nephew == record.honest.nephew == 0.0

    def test_weighted_scales_both_parties(self):
        record = record_for(State(1, 0), TransitionKind.HONEST_FORCES_TIE)
        weighted = record.weighted(0.5)
        assert weighted.pool.isclose(record.pool.scaled(0.5))
        assert weighted.honest.isclose(record.honest.scaled(0.5))
