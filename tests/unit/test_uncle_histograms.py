"""Uncle-distance histogram bookkeeping under the stubborn-mining strategies.

Table II's machinery (per-distance uncle counts collected at settlement) was
built and validated against Algorithm 1; the stubborn variants produce deeper and
longer-lived forks, so their histograms exercise the bookkeeping harder.  These
tests pin the accounting invariants for every strategy: the histograms tally
exactly the classified uncle blocks, distances stay inside the protocol window,
and the derived distribution/expectation are well-formed.
"""

from __future__ import annotations

import pytest

from repro.params import MiningParams
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import ChainSimulator
from repro.simulation.metrics import aggregate_results

STUBBORN_STRATEGIES = ("lead_stubborn", "equal_fork_stubborn", "lead_equal_fork_stubborn")


def run(strategy: str, *, seed: int = 3, blocks: int = 4000):
    config = SimulationConfig(
        params=MiningParams(alpha=0.4, gamma=0.5),
        num_blocks=blocks,
        seed=seed,
        strategy=strategy,
    )
    return ChainSimulator(config).run()


@pytest.fixture(scope="module", params=STUBBORN_STRATEGIES)
def stubborn_result(request):
    return run(request.param)


class TestStubbornHistograms:
    def test_histograms_tally_the_classified_uncles(self, stubborn_result):
        result = stubborn_result
        assert sum(result.honest_uncle_distance_counts.values()) == result.honest_uncle_blocks
        assert sum(result.pool_uncle_distance_counts.values()) == result.pool_uncle_blocks
        assert result.honest_uncle_blocks + result.pool_uncle_blocks == result.uncle_blocks

    def test_stubborn_races_produce_uncles_at_all(self, stubborn_result):
        # A 40% stubborn pool forks constantly; both parties lose blocks that end
        # up referenced, so the histograms cannot be empty.
        assert stubborn_result.uncle_blocks > 0
        assert stubborn_result.honest_uncle_distance_counts

    def test_distances_stay_inside_the_protocol_window(self, stubborn_result):
        result = stubborn_result
        window = result.config.max_uncle_distance
        for counts in (result.honest_uncle_distance_counts, result.pool_uncle_distance_counts):
            for distance, count in counts.items():
                assert 1 <= distance <= window
                assert count > 0

    def test_distribution_is_normalised_and_expectation_in_range(self, stubborn_result):
        result = stubborn_result
        distribution = result.honest_uncle_distance_distribution()
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert list(distribution) == sorted(distribution)
        expectation = result.expected_honest_uncle_distance()
        assert 1.0 <= expectation <= result.config.max_uncle_distance

    def test_deeper_stubbornness_pushes_honest_uncles_further_out(self):
        """Sanity on the physics: stubborn racing defers references vs Algorithm 1."""
        selfish = run("selfish")
        stubborn = run("lead_equal_fork_stubborn")
        assert (
            stubborn.expected_honest_uncle_distance()
            >= selfish.expected_honest_uncle_distance() - 0.25
        )

    def test_aggregated_histogram_pools_runs_and_normalises(self):
        results = [run("lead_stubborn", seed=seed, blocks=2000) for seed in (1, 2)]
        aggregate = aggregate_results(results)
        pooled = aggregate.honest_uncle_distance_distribution()
        assert sum(pooled.values()) == pytest.approx(1.0)
        total_counts = sum(
            sum(result.honest_uncle_distance_counts.values()) for result in results
        )
        first_distance_count = sum(
            result.honest_uncle_distance_counts.get(1, 0.0) for result in results
        )
        assert pooled[1] == pytest.approx(first_distance_count / total_counts)
