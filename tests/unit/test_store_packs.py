"""Unit tests for the pack tier: compaction, pack-first reads, pack damage.

The contract under test (see :mod:`repro.store.packs`): compaction changes
nothing observable except speed.  Every payload loads bit-exactly after
``compact()``, corruption in a pack reads as a miss exactly like corruption in
a loose file, and ``vacuum()`` sweeps pack damage the way it sweeps loose
debris.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import sqlite3

import pytest

from repro.params import MiningParams
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_once
from repro.store import (
    PACK_FILENAME,
    POLICY_NAMESPACE,
    SIMULATION_NAMESPACE,
    CompactReport,
    ResultStore,
)

CONFIG = SimulationConfig(params=MiningParams(alpha=0.3, gamma=0.5), num_blocks=600, seed=11)


def _key(index: int) -> str:
    return hashlib.sha256(f"pack-test-{index}".encode()).hexdigest()


def _payload(index: int) -> dict:
    return {"index": index, "values": [index * 0.5, index * 0.25], "tag": f"entry-{index}"}


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


def populate(store, count, namespace=SIMULATION_NAMESPACE):
    keys = [_key(index) for index in range(count)]
    for index, key in enumerate(keys):
        store.put(namespace, key, _payload(index))
    return keys


def corrupt_pack_row(store, namespace, key):
    """Tamper one pack row's payload without updating its checksum."""
    path = store.packs.pack_path(namespace, key[:2])
    with sqlite3.connect(path) as connection:
        connection.execute(
            "UPDATE entries SET payload = ? WHERE key = ?", ('{"tampered": true}', key)
        )


class TestCompactRoundTrip:
    def test_compaction_is_bit_exact(self, store):
        keys = populate(store, 20)
        before = {key: store.get(SIMULATION_NAMESPACE, key) for key in keys}
        report = store.compact()
        assert report.packed == 20
        assert report.invalid == 0
        after = {key: store.get(SIMULATION_NAMESPACE, key) for key in keys}
        assert after == before

    def test_loose_files_removed_and_packs_created(self, store):
        keys = populate(store, 10)
        store.compact()
        base = store.root / SIMULATION_NAMESPACE
        assert list(base.glob("*/*.json")) == []
        packs = list(base.glob(f"*/{PACK_FILENAME}"))
        assert packs  # one per shard touched
        assert {path.parent.name for path in packs} == {key[:2] for key in keys}

    def test_recompaction_is_a_noop(self, store):
        populate(store, 10)
        store.compact()
        again = store.compact()
        assert again == CompactReport(packed=0, deduplicated=0, invalid=0, packs=0)

    def test_simulation_result_round_trips_through_compaction(self, store):
        result = run_once(CONFIG, backend="markov")
        store.save_result(result, "markov")
        store.compact()
        assert store.load_result(CONFIG, "markov") == result
        assert store.has_result(CONFIG, "markov")

    def test_invalid_loose_entry_discarded_not_packed(self, store):
        keys = populate(store, 3)
        path = store._entry_path(SIMULATION_NAMESPACE, keys[0])
        path.write_text("{not json")
        report = store.compact()
        assert report.packed == 2
        assert report.invalid == 1
        assert store.get(SIMULATION_NAMESPACE, keys[0]) is None
        assert store.get(SIMULATION_NAMESPACE, keys[1]) is not None

    def test_namespace_restriction(self, store):
        sim_keys = populate(store, 2, SIMULATION_NAMESPACE)
        policy_keys = populate(store, 2, POLICY_NAMESPACE)
        report = store.compact(POLICY_NAMESPACE)
        assert report.packed == 2
        # Policy entries are packed, simulation entries still loose.
        assert (store.root / POLICY_NAMESPACE / policy_keys[0][:2] / PACK_FILENAME).exists()
        assert store._entry_path(SIMULATION_NAMESPACE, sim_keys[0]).exists()
        assert store.get(SIMULATION_NAMESPACE, sim_keys[0]) is not None

    def test_rewritten_loose_entry_deduplicated_on_recompact(self, store):
        keys = populate(store, 4)
        store.compact()
        # A concurrent writer re-deriving a packed key leaves a loose duplicate.
        store.put(SIMULATION_NAMESPACE, keys[0], _payload(0))
        report = store.compact()
        assert report.deduplicated == 1
        assert report.packed == 0
        assert not store._entry_path(SIMULATION_NAMESPACE, keys[0]).exists()
        assert store.get(SIMULATION_NAMESPACE, keys[0]) == _payload(0)


class TestPackReads:
    def test_get_many_spans_both_tiers(self, store):
        keys = populate(store, 6)
        store.compact()
        loose_keys = populate(store, 3)  # same keys 0..2, rewritten loose
        extra = hashlib.sha256(b"pack-test-extra").hexdigest()
        store.put(SIMULATION_NAMESPACE, extra, {"fresh": True})
        found = store.get_many(SIMULATION_NAMESPACE, keys + [extra, "f" * 64])
        assert set(found) == set(keys) | {extra}
        assert found[loose_keys[0]] == _payload(0)
        assert found[extra] == {"fresh": True}

    def test_contains_many_spans_both_tiers(self, store):
        keys = populate(store, 4)
        store.compact()
        extra = hashlib.sha256(b"pack-test-loose-only").hexdigest()
        store.put(SIMULATION_NAMESPACE, extra, {"fresh": True})
        present = store.contains_many(SIMULATION_NAMESPACE, keys + [extra, "0" * 64])
        assert present == set(keys) | {extra}

    def test_keys_and_count_cover_both_tiers_without_duplicates(self, store):
        keys = populate(store, 5)
        store.compact()
        store.put(SIMULATION_NAMESPACE, keys[0], _payload(0))  # loose duplicate
        extra = hashlib.sha256(b"pack-test-loose-new").hexdigest()
        store.put(SIMULATION_NAMESPACE, extra, {"fresh": True})
        listed = list(store.keys(SIMULATION_NAMESPACE))
        assert sorted(listed) == sorted(set(keys) | {extra})
        assert len(listed) == len(set(listed))
        assert store.count(SIMULATION_NAMESPACE) == 6

    def test_load_many_aligns_hits_and_misses(self, store):
        result = run_once(CONFIG, backend="markov")
        store.save_result(result, "markov")
        store.compact()
        other = CONFIG.with_seed(99)
        loaded = store.load_many([(CONFIG, "markov"), (other, "markov")])
        assert loaded == [result, None]
        assert store.has_results([(CONFIG, "markov"), (other, "markov")]) == [True, False]

    def test_store_pickles_without_connections(self, store):
        keys = populate(store, 3)
        store.compact()
        assert store.get(SIMULATION_NAMESPACE, keys[0]) is not None  # warm a connection
        clone = pickle.loads(pickle.dumps(store))
        assert clone.packs._connections == {}
        assert clone.get(SIMULATION_NAMESPACE, keys[0]) == _payload(0)


class TestPackDamage:
    def test_corrupt_pack_row_reads_as_miss(self, store):
        keys = populate(store, 3)
        store.compact()
        corrupt_pack_row(store, SIMULATION_NAMESPACE, keys[0])
        assert store.get(SIMULATION_NAMESPACE, keys[0]) is None
        assert store.get(SIMULATION_NAMESPACE, keys[1]) == _payload(1)

    def test_vacuum_evicts_corrupt_pack_rows(self, store):
        keys = populate(store, 3)
        store.compact()
        corrupt_pack_row(store, SIMULATION_NAMESPACE, keys[0])
        report = store.vacuum()
        assert report.removed_pack_rows == 1
        assert report.removed_packs == 0
        # The slot is clean: a recompute persists and reads back normally.
        store.put(SIMULATION_NAMESPACE, keys[0], _payload(0))
        assert store.get(SIMULATION_NAMESPACE, keys[0]) == _payload(0)

    def test_unreadable_pack_reads_as_miss_for_every_key(self, store):
        keys = populate(store, 3)
        store.compact()
        store.close()
        shards = {key[:2] for key in keys}
        for shard in shards:
            store.packs.pack_path(SIMULATION_NAMESPACE, shard).write_bytes(b"not sqlite")
        for key in keys:
            assert store.get(SIMULATION_NAMESPACE, key) is None

    def test_vacuum_removes_unreadable_packs(self, store):
        keys = populate(store, 3)
        store.compact()
        store.close()
        shards = {key[:2] for key in keys}
        for shard in shards:
            store.packs.pack_path(SIMULATION_NAMESPACE, shard).write_bytes(b"not sqlite")
        report = store.vacuum()
        assert report.removed_packs == len(shards)
        for shard in shards:
            assert not store.packs.pack_path(SIMULATION_NAMESPACE, shard).exists()

    def test_compact_rebuilds_an_unreadable_pack(self, store):
        keys = populate(store, 2)
        store.compact()
        store.close()
        shard = keys[0][:2]
        store.packs.pack_path(SIMULATION_NAMESPACE, shard).write_bytes(b"not sqlite")
        # New loose entries in the damaged shard force a compaction attempt.
        store.put(SIMULATION_NAMESPACE, keys[0], _payload(0))
        report = store.compact()
        assert report.reset_packs == 1
        assert store.get(SIMULATION_NAMESPACE, keys[0]) == _payload(0)

    def test_vacuum_deduplicates_loose_copies_of_packed_entries(self, store):
        keys = populate(store, 4)
        store.compact()
        # An interrupted compaction leaves a loose copy the pack already holds.
        store.put(SIMULATION_NAMESPACE, keys[0], _payload(0))
        report = store.vacuum()
        assert report.deduplicated_entries == 1
        assert report.removed_entries == 0
        assert not store._entry_path(SIMULATION_NAMESPACE, keys[0]).exists()
        assert store.get(SIMULATION_NAMESPACE, keys[0]) == _payload(0)


class TestStats:
    def test_stats_account_for_both_tiers(self, store):
        populate(store, 6)
        (report,) = store.stats(SIMULATION_NAMESPACE)
        assert report.namespace == SIMULATION_NAMESPACE
        assert report.loose_entries == 6
        assert report.packed_entries == 0
        assert report.pack_files == 0
        assert report.loose_bytes > 0
        assert report.entries == 6

        store.compact()
        (report,) = store.stats(SIMULATION_NAMESPACE)
        assert report.loose_entries == 0
        assert report.packed_entries == 6
        assert report.pack_files >= 1
        assert report.pack_bytes > 0
        assert report.entries == 6

    def test_stats_cover_every_namespace_by_default(self, store):
        populate(store, 2, SIMULATION_NAMESPACE)
        populate(store, 3, POLICY_NAMESPACE)
        reports = {report.namespace: report for report in store.stats()}
        assert reports[SIMULATION_NAMESPACE].entries == 2
        assert reports[POLICY_NAMESPACE].entries == 3
