"""Unit tests for the resilient dispatcher (:mod:`repro.utils.resilient`)."""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.errors import ParameterError, RetryExhaustedError
from repro.utils.resilient import (
    DEFAULT_POLICY,
    DEFERRED,
    RetryPolicy,
    TaskFailure,
    resilient_map,
)

# ---------------------------------------------------------------------------
# Worker payload functions: module-level so they pickle under any start method.
# ---------------------------------------------------------------------------


def _square(value):
    return value * value


def _fail_always(value):
    raise ValueError(f"task {value} always fails")


def _fail_below(value):
    """Fail for even inputs on the first attempt only (marker file protocol)."""
    marker, number = value
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("attempted")
        raise ValueError(f"first attempt at {number} fails")
    return number * 10


def _kill_self(value):
    os.kill(os.getpid(), signal.SIGKILL)


def _sleep_forever(value):
    time.sleep(3600)


def _sleep_briefly(value):
    time.sleep(0.05)
    return value


def _raise_system_exit(value):
    raise SystemExit(3)


#: A fast-retry policy so tests never sleep on backoff.
FAST = RetryPolicy(retries=2, backoff_base=0.0, backoff_cap=0.0)


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.3)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.3)  # capped, not 0.4
        assert policy.backoff(10) == pytest.approx(0.3)

    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(backoff_base=0.05)
        assert [policy.backoff(k) for k in (1, 2, 3)] == [
            policy.backoff(k) for k in (1, 2, 3)
        ]

    def test_backoff_rejects_zeroth_attempt(self):
        with pytest.raises(ParameterError):
            DEFAULT_POLICY.backoff(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"retries": -1},
            {"backoff_base": -0.1},
            {"backoff_base": 1.0, "backoff_cap": 0.5},
        ],
    )
    def test_invalid_policies_are_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            RetryPolicy(**kwargs)


class TestSerialPath:
    def test_maps_in_input_order(self):
        assert resilient_map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_input(self):
        assert resilient_map(_square, []) == []

    def test_failure_record_after_budget(self):
        outcomes = resilient_map(_fail_always, [5], policy=FAST)
        (failure,) = outcomes
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "error"
        assert failure.attempts == 3  # 1 + 2 retries
        assert "always fails" in failure.message

    def test_transient_failure_is_retried_to_success(self, tmp_path):
        marker = tmp_path / "attempted"
        outcomes = resilient_map(_fail_below, [(str(marker), 4)], policy=FAST)
        assert outcomes == [40]

    def test_fail_fast_raises_immediately(self):
        policy = RetryPolicy(retries=0, backoff_base=0.0, fail_fast=True)
        with pytest.raises(RetryExhaustedError):
            resilient_map(_fail_always, [1, 2], policy=policy)

    def test_zero_retries_means_single_attempt(self):
        policy = RetryPolicy(retries=0, backoff_base=0.0)
        (failure,) = resilient_map(_fail_always, [1], policy=policy)
        assert failure.attempts == 1

    def test_task_ids_relabel_failures(self):
        (failure,) = resilient_map(_fail_always, [1], policy=FAST, task_ids=[42])
        assert failure.task_id == 42

    def test_task_ids_length_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            resilient_map(_square, [1, 2], task_ids=[0])

    def test_try_claim_defers_declined_tasks(self):
        outcomes = resilient_map(
            _square, [1, 2, 3], try_claim=lambda task_id: task_id != 1
        )
        assert outcomes == [1, DEFERRED, 9]

    def test_on_settled_fires_incrementally_in_order(self):
        settled = []
        resilient_map(_square, [2, 3], on_settled=lambda i, r: settled.append((i, r)))
        assert settled == [(0, 4), (1, 9)]


class TestPoolPath:
    def test_maps_in_input_order(self):
        assert resilient_map(_square, list(range(6)), max_workers=2) == [
            0,
            1,
            4,
            9,
            16,
            25,
        ]

    def test_worker_crash_is_retried_and_reported(self):
        policy = RetryPolicy(retries=1, backoff_base=0.0)
        (failure,) = resilient_map(_kill_self, [0], max_workers=2, policy=policy)
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "crash"
        assert failure.attempts == 2
        assert "exit code -9" in failure.message

    def test_worker_crash_does_not_poison_other_tasks(self):
        policy = RetryPolicy(retries=0, backoff_base=0.0)
        outcomes = resilient_map(
            _crash_only_task_zero, [0, 1, 2, 3], max_workers=2, policy=policy
        )
        assert isinstance(outcomes[0], TaskFailure)
        assert outcomes[1:] == [10, 20, 30]

    def test_timeout_kills_the_worker_and_reports(self):
        policy = RetryPolicy(timeout=0.3, retries=0, backoff_base=0.0)
        started = time.monotonic()
        (failure,) = resilient_map(_sleep_forever, [0], max_workers=1, policy=policy)
        elapsed = time.monotonic() - started
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "timeout"
        assert "wall-clock timeout" in failure.message
        assert elapsed < 30  # the 3600s sleep was genuinely killed

    def test_timeout_forces_pool_even_for_serial_request(self):
        # max_workers=None with a timeout must still go through a killable
        # worker; a fast task simply succeeds there.
        policy = RetryPolicy(timeout=30.0, retries=0)
        assert resilient_map(_sleep_briefly, [7], policy=policy) == [7]

    def test_fail_fast_raises_from_pool(self):
        policy = RetryPolicy(retries=0, backoff_base=0.0, fail_fast=True)
        with pytest.raises(RetryExhaustedError):
            resilient_map(_fail_always, [1, 2, 3], max_workers=2, policy=policy)

    def test_pool_results_match_serial_results(self):
        tasks = list(range(8))
        assert resilient_map(_square, tasks, max_workers=3) == resilient_map(
            _square, tasks
        )

    def test_idle_worker_death_between_tasks_charges_no_attempt(self):
        """Regression: dispatching to a worker that died while idle lost the batch.

        A worker that exits *between* tasks (OOM-killed while idle, torn down
        by the OS) makes the next ``connection.send`` raise — which used to
        propagate and abort every remaining task.  It is the worker's failure,
        not the task's: the dispatcher must retire the corpse, redispatch to a
        fresh worker, charge no attempt and take no second claim.
        """
        # timeout forces the pool path even with one worker; retries=0 makes
        # the assertion sharp — any wrongly-charged attempt fails the task.
        policy = RetryPolicy(timeout=60.0, retries=0, backoff_base=0.0)
        claims: list[int] = []

        def claim_and_kill_idle_worker(task_id):
            claims.append(task_id)
            if task_id == 1:
                # Task 0 settled, so the pool's only worker is idle right now;
                # kill it so the upcoming send hits a closed pipe.
                for child in multiprocessing.active_children():
                    child.kill()
                    child.join()
            return True

        outcomes = resilient_map(
            _square,
            [5, 6],
            max_workers=1,
            policy=policy,
            try_claim=claim_and_kill_idle_worker,
        )
        assert outcomes == [25, 36]
        assert claims == [0, 1]  # the redispatch took no second claim

    def test_system_exit_settles_identically_on_both_paths(self):
        """Regression: serial and pool paths disagreed on BaseException tasks.

        A ``SystemExit``-raising task settled as a failed attempt under the
        pool (the worker catches ``BaseException``) but propagated — killing
        the whole batch — on the serial path.  Both paths must now produce the
        identical failure record.
        """
        (serial,) = resilient_map(_raise_system_exit, [5], policy=FAST)
        (pooled,) = resilient_map(
            _raise_system_exit, [5], max_workers=2, policy=FAST
        )
        assert isinstance(serial, TaskFailure)
        assert serial == pooled  # frozen dataclass: field-for-field identical
        assert serial.kind == "error"
        assert serial.message == "SystemExit: 3"
        assert serial.attempts == 3


def _crash_only_task_zero(value):
    if value == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 10
