"""Unit tests for network topologies and their derivation from configurations."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ParameterError
from repro.network.latency import ConstantLatency, ExponentialLatency, ZeroLatency
from repro.network.topology import (
    DEFAULT_HONEST_MINERS,
    MinerSpec,
    Topology,
    build_topology,
    multi_pool_topology,
    single_pool_topology,
)
from repro.params import MiningParams
from repro.simulation.config import SimulationConfig

PARAMS = MiningParams(alpha=0.3, gamma=0.5)


class TestMinerSpec:
    def test_rejects_empty_name(self):
        with pytest.raises(ParameterError):
            MinerSpec(name="", hash_power=0.5)

    def test_rejects_out_of_range_power(self):
        with pytest.raises(ParameterError):
            MinerSpec(name="m", hash_power=0.0)
        with pytest.raises(ParameterError):
            MinerSpec(name="m", hash_power=1.0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ParameterError, match="unknown mining strategy"):
            MinerSpec(name="m", hash_power=0.5, strategy="quantum")

    def test_party_attribution_defaults_to_strategic(self):
        assert MinerSpec(name="m", hash_power=0.5, strategy="selfish").counts_as_pool
        assert not MinerSpec(name="m", hash_power=0.5).counts_as_pool
        assert MinerSpec(name="m", hash_power=0.5, pool=True).counts_as_pool


class TestTopology:
    def test_powers_must_sum_to_one(self):
        with pytest.raises(ParameterError, match="sum to 1"):
            Topology(
                miners=(
                    MinerSpec(name="a", hash_power=0.5),
                    MinerSpec(name="b", hash_power=0.4),
                )
            )

    def test_names_must_be_unique(self):
        with pytest.raises(ParameterError, match="unique"):
            Topology(
                miners=(
                    MinerSpec(name="a", hash_power=0.5),
                    MinerSpec(name="a", hash_power=0.5),
                )
            )

    def test_needs_two_miners(self):
        with pytest.raises(ParameterError, match="at least two"):
            Topology(miners=(MinerSpec(name="a", hash_power=1.0 - 1e-12),))

    def test_latency_spec_strings_are_resolved(self):
        topology = single_pool_topology(0.3, latency="constant:0.5")
        assert isinstance(topology.latency, ConstantLatency)

    def test_link_overrides_win_over_the_default(self):
        topology = single_pool_topology(
            0.3,
            num_honest=2,
            latency="zero",
            link_latencies={("pool", "honest-0"): "constant:0.9"},
        )
        assert isinstance(topology.link_model(0, 1), ConstantLatency)
        assert isinstance(topology.link_model(0, 2), ZeroLatency)
        assert isinstance(topology.link_model(1, 0), ZeroLatency)

    def test_link_overrides_validate_endpoints(self):
        with pytest.raises(ParameterError, match="unknown miner"):
            single_pool_topology(0.3, link_latencies={("pool", "nobody"): "zero"})
        with pytest.raises(ParameterError, match="self-link"):
            single_pool_topology(0.3, link_latencies={("pool", "pool"): "zero"})

    def test_block_interval_must_be_positive(self):
        with pytest.raises(ParameterError, match="block_interval"):
            single_pool_topology(0.3, block_interval=0.0)

    def test_topologies_pickle(self):
        topology = multi_pool_topology(
            [(0.2, "selfish"), (0.15, "lead_stubborn")],
            latency=ExponentialLatency(mean=0.2),
            link_latencies={("pool-0", "pool-1"): "constant:0.4"},
        )
        clone = pickle.loads(pickle.dumps(topology))
        assert clone == topology


class TestFactories:
    def test_single_pool_layout(self):
        topology = single_pool_topology(0.3, num_honest=4)
        assert topology.num_miners == 5
        assert topology.miners[0].name == "pool"
        assert topology.miners[0].counts_as_pool
        assert sum(m.hash_power for m in topology.miners) == pytest.approx(1.0)
        assert topology.strategic_miners == (topology.miners[0],)

    def test_honest_baseline_pool_still_counts_as_pool(self):
        topology = single_pool_topology(0.3, strategy="honest")
        assert not topology.miners[0].is_strategic
        assert topology.miners[0].counts_as_pool

    def test_multi_pool_layout(self):
        topology = multi_pool_topology([(0.2, "selfish"), 0.15], num_honest=3)
        assert [m.name for m in topology.strategic_miners] == ["pool-0", "pool-1"]
        assert topology.miners[1].strategy == "selfish"  # bare floats default to selfish
        assert sum(m.hash_power for m in topology.miners) == pytest.approx(1.0)

    def test_multi_pool_needs_pools(self):
        with pytest.raises(ParameterError):
            multi_pool_topology([])

    def test_pools_owning_everything_rejected(self):
        with pytest.raises(ParameterError, match="positive hash power"):
            multi_pool_topology([(0.6, "selfish"), (0.4, "selfish")])


class TestBuildTopology:
    def test_explicit_topology_wins(self):
        topology = single_pool_topology(0.2, num_honest=2)
        config = SimulationConfig(params=PARAMS, topology=topology)
        assert build_topology(config) is topology

    def test_derived_topology_uses_params_strategy_and_latency(self):
        config = SimulationConfig(
            params=PARAMS, strategy="lead_stubborn", latency="exponential:0.3"
        )
        topology = build_topology(config)
        assert topology.miners[0].hash_power == pytest.approx(0.3)
        assert topology.miners[0].strategy == "lead_stubborn"
        assert isinstance(topology.latency, ExponentialLatency)
        assert topology.num_miners == 1 + DEFAULT_HONEST_MINERS

    def test_alpha_zero_degrades_to_all_honest(self):
        config = SimulationConfig(params=MiningParams(alpha=0.0, gamma=0.5))
        topology = build_topology(config)
        assert topology.strategic_miners == ()
        assert sum(m.hash_power for m in topology.miners) == pytest.approx(1.0)

    def test_config_validates_topology_type(self):
        with pytest.raises(ParameterError, match="Topology"):
            SimulationConfig(params=PARAMS, topology="not-a-topology")

    def test_config_resolves_latency_specs(self):
        config = SimulationConfig(params=PARAMS, latency="constant:0.2")
        assert isinstance(config.latency, ConstantLatency)
        with pytest.raises(ParameterError):
            SimulationConfig(params=PARAMS, latency="quantum")
