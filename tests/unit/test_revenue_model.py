"""Unit tests for the analytical revenue engine."""

from __future__ import annotations

import pytest

from repro.analysis.revenue import RevenueModel
from repro.params import MiningParams
from repro.rewards.schedule import BitcoinSchedule, EthereumByzantiumSchedule, FlatUncleSchedule


class TestBasicProperties:
    def test_block_rate_is_one(self, ethereum_model, params_point):
        rates = ethereum_model.revenue_rates(params_point)
        assert rates.block_rate == pytest.approx(1.0, abs=1e-9)

    def test_regular_rate_equals_total_static_reward(self, ethereum_model, params_point):
        # With Ks = 1 every regular block pays exactly one unit of static reward.
        rates = ethereum_model.revenue_rates(params_point)
        assert rates.regular_rate == pytest.approx(rates.split.total_static, abs=1e-12)

    def test_rates_are_non_negative(self, ethereum_model, params_point):
        rates = ethereum_model.revenue_rates(params_point)
        for value in (
            rates.pool.static,
            rates.pool.uncle,
            rates.pool.nephew,
            rates.honest.static,
            rates.honest.uncle,
            rates.honest.nephew,
            rates.regular_rate,
            rates.uncle_rate,
            rates.stale_rate,
        ):
            assert value >= 0.0

    def test_uncle_rate_decomposes_by_miner(self, ethereum_model, params_point):
        rates = ethereum_model.revenue_rates(params_point)
        assert rates.uncle_rate == pytest.approx(rates.pool_uncle_rate + rates.honest_uncle_rate)

    def test_honest_uncle_distance_rates_sum_to_honest_uncle_rate(self, ethereum_model, params_point):
        rates = ethereum_model.revenue_rates(params_point)
        within_window = sum(rates.honest_uncle_distance_rates.values())
        assert within_window == pytest.approx(rates.honest_uncle_rate, abs=1e-9)

    def test_as_dict_round_trips_key_quantities(self, ethereum_model):
        params = MiningParams(alpha=0.3, gamma=0.5)
        rates = ethereum_model.revenue_rates(params)
        data = rates.as_dict()
        assert data["alpha"] == params.alpha
        assert data["pool_static"] == pytest.approx(rates.pool.static)
        assert data["relative_pool_revenue"] == pytest.approx(rates.relative_pool_revenue)


class TestAgainstKnownBehaviour:
    def test_tiny_pool_earns_roughly_its_share(self, ethereum_model):
        rates = ethereum_model.revenue_rates(MiningParams(alpha=0.01, gamma=0.5))
        assert rates.relative_pool_revenue == pytest.approx(0.01, abs=0.005)

    def test_static_rewards_match_eyal_sirer_formula(self, ethereum_model):
        # Remark 4: the static-reward analysis coincides with Eyal-Sirer's.
        params = MiningParams(alpha=0.35, gamma=0.5)
        rates = ethereum_model.revenue_rates(params)
        alpha, gamma = params.alpha, params.gamma
        expected_pool = (
            alpha * (1 - alpha) ** 2 * (4 * alpha + gamma * (1 - 2 * alpha)) - alpha**3
        ) / (2 * alpha**3 - 4 * alpha**2 + 1)
        assert rates.pool.static == pytest.approx(expected_pool, abs=1e-9)

    def test_pool_uncles_all_at_distance_one(self, ethereum_model):
        # Remark 5: the pool's uncles are always referenced at distance 1, so its
        # uncle revenue equals Ku(1) times its uncle creation rate.
        params = MiningParams(alpha=0.3, gamma=0.4)
        rates = ethereum_model.revenue_rates(params)
        assert rates.pool.uncle == pytest.approx(rates.pool_uncle_rate * 7 / 8, abs=1e-9)

    def test_bitcoin_schedule_produces_no_uncle_revenue(self, bitcoin_model, params_point):
        rates = bitcoin_model.revenue_rates(params_point)
        assert rates.pool.uncle == 0.0
        assert rates.honest.uncle == 0.0
        assert rates.pool.nephew == 0.0
        assert rates.honest.nephew == 0.0
        assert rates.uncle_rate == 0.0

    def test_uncle_revenue_scales_with_flat_fraction(self):
        params = MiningParams(alpha=0.3, gamma=0.5)
        small = RevenueModel(FlatUncleSchedule(0.25), max_lead=40).revenue_rates(params)
        large = RevenueModel(FlatUncleSchedule(0.75), max_lead=40).revenue_rates(params)
        assert large.pool.uncle == pytest.approx(3 * small.pool.uncle, rel=1e-9)
        assert large.honest.uncle == pytest.approx(3 * small.honest.uncle, rel=1e-9)
        # Static rewards and block classification are schedule-independent.
        assert large.pool.static == pytest.approx(small.pool.static)
        assert large.uncle_rate == pytest.approx(small.uncle_rate)


class TestTruncationAndReuse:
    def test_truncation_insensitivity(self):
        # Truncation error decays roughly like (alpha/beta)**max_lead; at alpha = 0.45
        # the 30-state model is accurate to a few 1e-3 and the 70-state model to
        # better than 1e-7, so the two must agree to the coarser of the two errors.
        params = MiningParams(alpha=0.45, gamma=0.5)
        coarse = RevenueModel(EthereumByzantiumSchedule(), max_lead=30).revenue_rates(params)
        fine = RevenueModel(EthereumByzantiumSchedule(), max_lead=70).revenue_rates(params)
        assert coarse.pool.total == pytest.approx(fine.pool.total, abs=5e-3)
        assert coarse.honest.total == pytest.approx(fine.honest.total, abs=5e-3)
        assert coarse.uncle_rate == pytest.approx(fine.uncle_rate, abs=5e-3)

    def test_truncation_error_decreases_with_depth(self):
        params = MiningParams(alpha=0.45, gamma=0.5)
        reference = RevenueModel(EthereumByzantiumSchedule(), max_lead=90).revenue_rates(params)
        coarse = RevenueModel(EthereumByzantiumSchedule(), max_lead=30).revenue_rates(params)
        fine = RevenueModel(EthereumByzantiumSchedule(), max_lead=60).revenue_rates(params)
        assert abs(fine.pool.total - reference.pool.total) < abs(coarse.pool.total - reference.pool.total)

    def test_precomputed_stationary_can_be_reused(self, ethereum_model):
        params = MiningParams(alpha=0.3, gamma=0.5)
        stationary = ethereum_model.stationary(params)
        direct = ethereum_model.revenue_rates(params)
        reused = ethereum_model.revenue_rates(params, stationary=stationary)
        assert direct.split.isclose(reused.split)

    def test_relative_revenue_shortcut(self, ethereum_model):
        params = MiningParams(alpha=0.3, gamma=0.5)
        assert ethereum_model.relative_pool_revenue(params) == pytest.approx(
            ethereum_model.revenue_rates(params).relative_pool_revenue
        )

    def test_describe_mentions_schedule_and_truncation(self, ethereum_model):
        text = ethereum_model.describe()
        assert "EthereumByzantiumSchedule" in text
        assert "max_lead=60" in text
