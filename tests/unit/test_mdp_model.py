"""Unit tests for the action-conditioned MDP model (:mod:`repro.mdp.model`)."""

from __future__ import annotations

import pytest

from repro.errors import StateSpaceError
from repro.markov.state import State, StateSpace
from repro.markov.transitions import TransitionKind, transitions_from_state
from repro.mdp.model import (
    MdpModel,
    PoolDecision,
    available_decisions,
    decision_transitions,
    policy_transitions_from_state,
)
from repro.params import MiningParams
from repro.rewards.schedule import EthereumByzantiumSchedule

PARAMS = MiningParams(alpha=0.3, gamma=0.5)
SCHEDULE = EthereumByzantiumSchedule()
MAX_LEAD = 10


@pytest.fixture(scope="module")
def model() -> MdpModel:
    return MdpModel(PARAMS, SCHEDULE, max_lead=MAX_LEAD)


class TestAvailableDecisions:
    def test_every_state_offers_both_decisions_except_the_tie(self):
        for state in StateSpace(MAX_LEAD):
            decisions = available_decisions(state)
            if state == State(1, 1):
                assert decisions == (PoolDecision.OVERRIDE,)
            else:
                assert decisions == (PoolDecision.WITHHOLD, PoolDecision.OVERRIDE)

    def test_withhold_at_the_tie_rejected(self):
        with pytest.raises(StateSpaceError, match="tie-breaking"):
            decision_transitions(State(1, 1), PARAMS, PoolDecision.WITHHOLD, max_lead=MAX_LEAD)


class TestDecisionTransitions:
    def test_withhold_reproduces_the_paper_chain(self):
        for state in StateSpace(MAX_LEAD):
            if state == State(1, 1):
                continue
            chosen = decision_transitions(state, PARAMS, PoolDecision.WITHHOLD, max_lead=MAX_LEAD)
            assert chosen == list(transitions_from_state(state, PARAMS, max_lead=MAX_LEAD))

    def test_override_redirects_only_the_pool_event(self):
        for state in StateSpace(MAX_LEAD):
            base = list(transitions_from_state(state, PARAMS, max_lead=MAX_LEAD))
            chosen = decision_transitions(state, PARAMS, PoolDecision.OVERRIDE, max_lead=MAX_LEAD)
            assert len(chosen) == len(base)
            for original, redirected in zip(base, chosen):
                assert redirected.rate == original.rate
                if state != State(1, 1) and original.kind.case_number in (2, 3, 6):
                    assert redirected.target == State(0, 0)
                    assert redirected.kind is TransitionKind.POOL_EXTENDS_PRIVATE_LEAD
                else:
                    assert redirected == original

    def test_rates_sum_to_one_under_both_decisions(self):
        for state in StateSpace(MAX_LEAD):
            for decision in available_decisions(state):
                total = sum(
                    t.rate
                    for t in decision_transitions(state, PARAMS, decision, max_lead=MAX_LEAD)
                )
                assert total == pytest.approx(1.0)

    def test_policy_enumerator_follows_the_override_table(self):
        overrides = frozenset({State(0, 0).encode()})
        honest_like = policy_transitions_from_state(
            State(0, 0), PARAMS, overrides, max_lead=MAX_LEAD
        )
        assert all(t.target == State(0, 0) for t in honest_like)
        selfish_like = policy_transitions_from_state(
            State(2, 0), PARAMS, overrides, max_lead=MAX_LEAD
        )
        assert selfish_like == list(transitions_from_state(State(2, 0), PARAMS, max_lead=MAX_LEAD))

    def test_policy_enumerator_forces_the_tie_resolution(self):
        transitions = policy_transitions_from_state(
            State(1, 1), PARAMS, frozenset(), max_lead=MAX_LEAD
        )
        assert [t.kind for t in transitions] == [TransitionKind.TIE_RESOLVED]


class TestCompiledModel:
    def test_action_layout_matches_the_state_space(self, model):
        # Every state has two actions except the single-action tie state.
        assert model.num_actions == 2 * model.num_states - 1
        assert model.action_offsets[0] == 0
        assert model.action_offsets[-1] == model.num_actions

    def test_transition_rows_are_distributions(self, model):
        row_sums = model.transition_matrix.sum(axis=1)
        assert row_sums.min() == pytest.approx(1.0)
        assert row_sums.max() == pytest.approx(1.0)

    def test_override_reward_is_the_certain_static_block(self, model):
        schedule_static = SCHEDULE.static_reward
        alpha = PARAMS.alpha
        for action in model.actions_of(State(5, 1)):
            if action.decision is PoolDecision.OVERRIDE:
                # Pool event: alpha * Ks certain; honest events contribute the
                # unchanged case-7/11 records.
                withhold = next(
                    a
                    for a in model.actions_of(State(5, 1))
                    if a.decision is PoolDecision.WITHHOLD
                )
                assert action.expected_pool_reward == pytest.approx(
                    withhold.expected_pool_reward
                )
                assert action.expected_pool_reward >= alpha * schedule_static

    def test_selfish_policy_picks_withhold_everywhere_but_the_tie(self, model):
        policy = model.selfish_policy()
        for index, flat in enumerate(policy):
            action = model.actions[int(flat)]
            expected = (
                PoolDecision.OVERRIDE
                if model.space.state_at(index) == State(1, 1)
                else PoolDecision.WITHHOLD
            )
            assert action.decision is expected

    def test_honest_policy_overrides_everywhere(self, model):
        for flat in model.honest_policy():
            assert model.actions[int(flat)].decision is PoolDecision.OVERRIDE

    def test_flat_index_rejects_missing_decisions(self, model):
        tie_index = model.space.index_of(State(1, 1))
        with pytest.raises(StateSpaceError, match="withhold"):
            model.flat_index(tie_index, PoolDecision.WITHHOLD)
