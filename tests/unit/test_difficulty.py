"""Unit tests for the difficulty-adjustment rules."""

from __future__ import annotations

import pytest

from repro.analysis.absolute import Scenario
from repro.errors import ParameterError
from repro.params import MiningParams
from repro.rewards.breakdown import PartyRewards
from repro.simulation.config import SimulationConfig
from repro.simulation.difficulty import EIP100Rule, PreByzantiumRule, difficulty_rule_for
from repro.simulation.metrics import SimulationResult

CONFIG = SimulationConfig(params=MiningParams(alpha=0.3, gamma=0.5), num_blocks=100)


def result(regular=80.0, uncle=15.0, stale=5.0) -> SimulationResult:
    return SimulationResult(
        config=CONFIG,
        pool_rewards=PartyRewards(static=30.0),
        honest_rewards=PartyRewards(static=50.0),
        regular_blocks=regular,
        pool_regular_blocks=30.0,
        honest_regular_blocks=regular - 30.0,
        uncle_blocks=uncle,
        pool_uncle_blocks=5.0,
        honest_uncle_blocks=uncle - 5.0,
        stale_blocks=stale,
        total_blocks=regular + uncle + stale,
        num_events=100,
    )


class TestRules:
    def test_pre_byzantium_counts_regular_blocks_only(self):
        assert PreByzantiumRule().counted_blocks(result()) == pytest.approx(80.0)

    def test_eip100_adds_uncles(self):
        assert EIP100Rule().counted_blocks(result()) == pytest.approx(95.0)

    def test_absolute_revenues_match_result_methods(self):
        r = result()
        assert PreByzantiumRule().pool_absolute_revenue(r) == pytest.approx(
            r.pool_absolute_revenue(Scenario.REGULAR_ONLY)
        )
        assert EIP100Rule().honest_absolute_revenue(r) == pytest.approx(
            r.honest_absolute_revenue(Scenario.REGULAR_PLUS_UNCLE)
        )

    def test_zero_counted_blocks_rejected(self):
        with pytest.raises(ParameterError):
            PreByzantiumRule().pool_absolute_revenue(result(regular=0.0, uncle=0.0, stale=0.0))

    def test_scenario_attributes(self):
        assert PreByzantiumRule().scenario is Scenario.REGULAR_ONLY
        assert EIP100Rule().scenario is Scenario.REGULAR_PLUS_UNCLE

    def test_factory_round_trips_scenarios(self):
        assert isinstance(difficulty_rule_for(Scenario.REGULAR_ONLY), PreByzantiumRule)
        assert isinstance(difficulty_rule_for(Scenario.REGULAR_PLUS_UNCLE), EIP100Rule)

    def test_describe(self):
        assert "EIP100" in EIP100Rule().describe()
