"""Unit tests for :mod:`repro.simulation.config`."""

from __future__ import annotations

import warnings

import pytest

from repro.errors import ParameterError
from repro.params import MiningParams
from repro.rewards.schedule import EthereumByzantiumSchedule, FlatUncleSchedule
from repro.simulation.config import SimulationConfig

PARAMS = MiningParams(alpha=0.3, gamma=0.5)


class TestDefaults:
    def test_paper_defaults(self):
        config = SimulationConfig(params=PARAMS)
        assert config.num_blocks == 100_000
        assert config.num_honest_miners == 999
        assert config.selfish is None
        assert config.strategy_name == "selfish"
        assert config.max_uncles_per_block == 2
        assert config.max_uncle_distance == 6
        assert isinstance(config.schedule, EthereumByzantiumSchedule)

    def test_describe_mentions_mode_and_schedule(self):
        text = SimulationConfig(params=PARAMS, strategy="honest").describe()
        assert "honest" in text
        assert "EthereumByzantiumSchedule" in text


class TestValidation:
    def test_rejects_non_positive_block_count(self):
        with pytest.raises(ParameterError):
            SimulationConfig(params=PARAMS, num_blocks=0)

    def test_rejects_non_positive_honest_miner_count(self):
        with pytest.raises(ParameterError):
            SimulationConfig(params=PARAMS, num_honest_miners=0)

    def test_rejects_negative_protocol_limits(self):
        with pytest.raises(ParameterError):
            SimulationConfig(params=PARAMS, max_uncles_per_block=-1)
        with pytest.raises(ParameterError):
            SimulationConfig(params=PARAMS, max_uncle_distance=-1)

    def test_rejects_warmup_longer_than_run(self):
        with pytest.raises(ParameterError):
            SimulationConfig(params=PARAMS, num_blocks=100, warmup_blocks=100)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ParameterError):
            SimulationConfig(params=PARAMS, warmup_blocks=-1)


class TestDeprecatedSelfishFlag:
    def test_setting_the_flag_emits_a_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="'selfish' flag"):
            SimulationConfig(params=PARAMS, selfish=True)
        with pytest.warns(DeprecationWarning, match="'selfish' flag"):
            SimulationConfig(params=PARAMS, selfish=False)

    def test_not_setting_the_flag_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            SimulationConfig(params=PARAMS)
            SimulationConfig(params=PARAMS, strategy="honest")

    def test_use_raises_under_W_error_DeprecationWarning(self):
        """The `-W error::DeprecationWarning` contract: legacy use becomes an error."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(DeprecationWarning, match="'selfish' flag"):
                SimulationConfig(params=PARAMS, selfish=True)

    def test_both_set_error_keeps_precedence_over_the_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(ParameterError, match="conflicts"):
                SimulationConfig(params=PARAMS, selfish=False, strategy="selfish")

    def test_derived_copies_resolve_the_flag_and_stay_silent(self):
        with pytest.warns(DeprecationWarning):
            legacy = SimulationConfig(params=PARAMS, selfish=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            derived = legacy.with_seed(9)
        assert derived.selfish is None
        assert derived.strategy_name == "honest"


class TestCopies:
    def test_with_seed_changes_only_the_seed(self):
        config = SimulationConfig(params=PARAMS, num_blocks=500, seed=1)
        copy = config.with_seed(99)
        assert copy.seed == 99
        assert copy.num_blocks == 500
        assert copy.params == config.params

    def test_with_params_changes_only_the_parameters(self):
        config = SimulationConfig(params=PARAMS, schedule=FlatUncleSchedule(0.5), seed=3)
        other = MiningParams(alpha=0.1, gamma=0.9)
        copy = config.with_params(other)
        assert copy.params == other
        assert copy.seed == 3
        assert isinstance(copy.schedule, FlatUncleSchedule)
