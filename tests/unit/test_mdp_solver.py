"""Unit tests for the MDP solver (:mod:`repro.mdp.solver`)."""

from __future__ import annotations

import pytest

from repro.analysis.revenue import RevenueModel
from repro.errors import ConvergenceError, ParameterError
from repro.markov.state import State
from repro.mdp.model import PoolDecision
from repro.mdp.solver import (
    MdpSolver,
    clear_policy_cache,
    solve_optimal_policy,
)
from repro.params import MiningParams
from repro.rewards.schedule import BitcoinSchedule, EthereumByzantiumSchedule, FlatUncleSchedule

MAX_LEAD = 20


def solver_at(alpha: float, gamma: float, **kwargs) -> MdpSolver:
    return MdpSolver(MiningParams(alpha=alpha, gamma=gamma), max_lead=MAX_LEAD, **kwargs)


class TestPolicyEvaluation:
    def test_selfish_pinned_matches_the_analytical_revenue_model(self):
        model = RevenueModel(max_lead=MAX_LEAD)
        for alpha, gamma in [(0.2, 0.3), (0.35, 0.5), (0.45, 0.9)]:
            solver = solver_at(alpha, gamma)
            evaluation = solver.evaluate(solver.model.selfish_policy())
            expected = model.revenue_rates(MiningParams(alpha=alpha, gamma=gamma))
            assert evaluation.share == pytest.approx(
                expected.relative_pool_revenue, abs=1e-12
            )
            assert evaluation.rates.uncle_rate == pytest.approx(expected.uncle_rate, abs=1e-12)
            assert evaluation.rates.stale_rate == pytest.approx(expected.stale_rate, abs=1e-12)

    def test_honest_pinned_earns_exactly_alpha(self):
        for alpha in (0.1, 0.3, 0.45):
            solver = solver_at(alpha, 0.5)
            evaluation = solver.evaluate(solver.model.honest_policy())
            assert evaluation.share == pytest.approx(alpha, abs=1e-12)
            assert evaluation.rates.stale_rate == pytest.approx(0.0, abs=1e-12)

    def test_decision_map_form_overrides_selected_states(self):
        solver = solver_at(0.3, 0.5)
        pinned = solver.evaluate_decisions({State(0, 0): PoolDecision.OVERRIDE})
        assert pinned.share == pytest.approx(0.3, abs=1e-12)


class TestSolve:
    def test_below_threshold_the_optimal_policy_is_honest(self):
        result = solver_at(0.1, 0.5).solve()
        assert result.policy_label() == "honest"
        assert result.optimal_share == pytest.approx(0.1, abs=1e-10)
        assert State(0, 0) in result.divergence_from_selfish()

    def test_above_threshold_the_optimal_policy_is_algorithm_1(self):
        result = solver_at(0.4, 0.5).solve()
        assert result.policy_label() == "selfish"
        assert result.divergence_from_selfish() == ()
        expected = RevenueModel(max_lead=MAX_LEAD).relative_pool_revenue(
            MiningParams(alpha=0.4, gamma=0.5)
        )
        assert result.optimal_share == pytest.approx(expected, abs=1e-12)

    def test_share_sequence_is_monotone_and_ends_at_the_optimum(self):
        result = solver_at(0.15, 0.5).solve()
        assert list(result.shares) == sorted(result.shares)
        assert result.shares[-1] == pytest.approx(result.optimal_share, abs=1e-12)

    def test_override_codes_always_contain_the_forced_tie_break(self):
        for alpha in (0.1, 0.3, 0.45):
            result = solver_at(alpha, 0.5).solve()
            assert State(1, 1).encode() in result.override_codes

    def test_zero_alpha_degenerates_to_share_zero(self):
        result = solver_at(0.0, 0.5).solve()
        assert result.optimal_share == 0.0
        assert result.shares == (0.0,)

    def test_bitcoin_schedule_recovers_the_eyal_sirer_threshold_side(self):
        # At gamma=0 the Bitcoin threshold is 1/3: below it honest, above selfish.
        below = MdpSolver(
            MiningParams(alpha=0.30, gamma=0.0), BitcoinSchedule(), max_lead=MAX_LEAD
        ).solve()
        above = MdpSolver(
            MiningParams(alpha=0.36, gamma=0.0), BitcoinSchedule(), max_lead=MAX_LEAD
        ).solve()
        assert below.policy_label() == "honest"
        assert above.policy_label() == "selfish"

    def test_rvi_iteration_budget_enforced(self):
        solver = solver_at(0.35, 0.5)
        with pytest.raises(ConvergenceError, match="relative value iteration"):
            solver.improve(0.35, max_iterations=2)


class TestCaching:
    def test_cache_returns_the_same_result_object(self):
        clear_policy_cache()
        params = MiningParams(alpha=0.33, gamma=0.4)
        first = solve_optimal_policy(params, max_lead=MAX_LEAD)
        second = solve_optimal_policy(params, EthereumByzantiumSchedule(), max_lead=MAX_LEAD)
        assert second is first  # schedules compared by value, not identity

    def test_cache_distinguishes_schedules_and_truncations(self):
        clear_policy_cache()
        params = MiningParams(alpha=0.33, gamma=0.4)
        byzantium = solve_optimal_policy(params, max_lead=MAX_LEAD)
        flat = solve_optimal_policy(params, FlatUncleSchedule(0.5), max_lead=MAX_LEAD)
        deeper = solve_optimal_policy(params, max_lead=MAX_LEAD + 5)
        assert flat is not byzantium
        assert deeper is not byzantium
        assert deeper.max_lead == MAX_LEAD + 5

    def test_invalid_truncation_rejected(self):
        with pytest.raises(ParameterError, match="max_lead"):
            solve_optimal_policy(MiningParams(alpha=0.3, gamma=0.5), max_lead=1)
