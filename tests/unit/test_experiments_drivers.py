"""Unit tests for the figure/table experiment drivers (fast-fidelity runs)."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.experiments.discussion import run_discussion
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import figure9_schedules, run_figure9
from repro.experiments.figure10 import run_figure10
from repro.experiments.network import run_network
from repro.experiments.optimal import run_optimal
from repro.experiments.strategies import run_strategy_comparison
from repro.experiments.table2 import run_table2


class TestOptimalFrontierDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_optimal(fast=True, simulation_blocks=2000, simulation_runs=1)

    def test_fast_grid_covers_one_gamma(self, result):
        assert result.gammas == (0.5,)
        assert len(result.alphas) >= 2
        assert set(result.cells) == {(alpha, 0.5) for alpha in result.alphas}

    def test_optimal_dominates_both_corners_in_every_cell(self, result):
        for cell in result.cells.values():
            assert cell.advantage >= -1e-9

    def test_threshold_detected_and_policy_labels_flip(self, result):
        threshold = result.threshold_alpha(0.5)
        assert threshold is not None
        for alpha in result.alphas:
            label = result.cell(alpha, 0.5).policy.policy_label()
            assert label == ("honest" if alpha < threshold else "selfish")

    def test_simulation_sections_cover_the_grid(self, result):
        assert len(result.simulated_optimal) == len(result.alphas)
        assert result.simulated_catalogue is not None
        for aggregates in result.simulated_catalogue.values():
            assert len(aggregates) == len(result.alphas)

    def test_report_renders_every_section(self, result):
        text = result.report()
        assert "Optimal-strategy frontier" in text
        assert "Policy structure" in text
        assert "solver vs chain simulation" in text
        assert "stubborn catalogue" in text
        assert "profitability threshold" in text

    def test_markov_backend_rejected_for_the_catalogue_section(self):
        with pytest.raises(ParameterError, match="markov"):
            run_optimal(fast=True, simulation_backend="markov")

    def test_markov_backend_accepted_without_the_catalogue_section(self):
        result = run_optimal(
            fast=True,
            simulation_backend="markov",
            include_catalogue=False,
            simulation_blocks=2000,
        )
        assert result.simulated_catalogue is None
        assert len(result.simulated_optimal) == len(result.alphas)
        assert "markov simulation" in result.report()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError, match="backend"):
            run_optimal(simulation_backend="quantum")

    def test_non_default_truncation_requires_disabling_the_validation_section(self):
        with pytest.raises(ParameterError, match="max_lead"):
            run_optimal(fast=True, max_lead=12)
        result = run_optimal(
            fast=True, max_lead=12, include_simulation=False, include_catalogue=False
        )
        assert result.max_lead == 12
        assert result.simulated_optimal == ()


class TestFigure8Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure8(fast=True, include_simulation=True, simulation_blocks=4000, simulation_runs=1)

    def test_analysis_and_simulation_cover_the_same_grid(self, result):
        assert result.simulation is not None
        assert result.alphas == result.simulation.alphas

    def test_simulation_tracks_analysis(self, result):
        simulated = result.simulation.pool_absolute_scenario1()
        for point, value in zip(result.analysis.points, simulated):
            assert value == pytest.approx(point.pool_absolute, abs=0.05)

    def test_report_contains_series_and_crossover_note(self, result):
        text = result.report()
        assert "Figure 8" in text
        assert "0.163" in text

    def test_analysis_only_mode(self):
        result = run_figure8(fast=True, include_simulation=False)
        assert result.simulation is None
        assert "simulation" not in result.report().splitlines()[1]


class TestFigure9Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure9(fast=True)

    def test_four_schedules_compared(self, result):
        assert set(result.sweeps) == set(figure9_schedules())

    def test_larger_uncle_rewards_pay_more(self, result):
        final_index = len(result.alphas) - 1
        small = result.sweeps["Ku=2/8"].points[final_index]
        large = result.sweeps["Ku=7/8"].points[final_index]
        assert large.pool_absolute > small.pool_absolute
        assert large.total_absolute > small.total_absolute

    def test_ethereum_schedule_tracks_seven_eighths_for_the_pool(self, result):
        final_index = len(result.alphas) - 1
        ethereum = result.sweeps["Ku(.)"].points[final_index]
        seven_eighths = result.sweeps["Ku=7/8"].points[final_index]
        assert ethereum.pool_absolute == pytest.approx(seven_eighths.pool_absolute, rel=0.02)

    def test_total_revenue_inflates_with_alpha(self, result):
        totals = result.sweeps["Ku=7/8"].total_absolute
        assert totals[-1] > totals[0]
        assert totals[-1] > 1.05

    def test_report_renders(self, result):
        text = result.report()
        assert "Figure 9" in text
        assert "Ku=7/8 total" in text


class TestFigure10Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure10(gammas=[0.0, 0.5, 1.0], max_lead=25)

    def test_scenario1_below_bitcoin_everywhere(self, result):
        for point in result.points:
            assert point.ethereum_scenario1.alpha_star <= point.bitcoin + 1e-6

    def test_scenario2_above_scenario1(self, result):
        for point in result.points:
            assert point.ethereum_scenario2.alpha_star >= point.ethereum_scenario1.alpha_star

    def test_all_thresholds_vanish_at_gamma_one(self, result):
        last = result.points[-1]
        assert last.bitcoin == pytest.approx(0.0)
        assert last.ethereum_scenario1.alpha_star == pytest.approx(0.0, abs=5e-3)
        assert last.ethereum_scenario2.alpha_star == pytest.approx(0.0, abs=5e-3)

    def test_report_renders_all_gammas(self, result):
        text = result.report()
        assert "Figure 10" in text
        for gamma in result.gammas:
            assert f"{gamma:.4f}" in text


class TestTable2Driver:
    def test_analysis_columns_reproduce_paper_values(self):
        result = run_table2(fast=True, include_simulation=False)
        first = result.columns[0]
        assert first.analysis.probability(1) == pytest.approx(0.527, abs=0.01)
        second = result.columns[1]
        assert second.analysis.expectation == pytest.approx(2.72, abs=0.05)

    def test_report_contains_expectation_row(self):
        text = run_table2(fast=True, include_simulation=False).report()
        assert "Expectation" in text
        assert "Table II" in text

    def test_simulation_overlay_close_to_analysis(self):
        result = run_table2(
            alphas=(0.3,), include_simulation=True, simulation_blocks=8000, simulation_runs=1, max_lead=30
        )
        column = result.columns[0]
        assert column.simulated is not None
        assert column.simulated.get(1, 0.0) == pytest.approx(column.analysis.probability(1), abs=0.08)


class TestStrategyComparisonDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_strategy_comparison(
            alphas=(0.15, 0.40),
            simulation_blocks=2500,
            simulation_runs=1,
        )

    def test_covers_all_default_strategies_and_grid(self, result):
        assert result.strategies == ("honest", "selfish", "lead_stubborn", "equal_fork_stubborn")
        assert result.alphas == (0.15, 0.40)
        for strategy in result.strategies:
            assert len(result.relative_revenue(strategy)) == 2

    def test_honest_row_tracks_fair_share(self, result):
        for alpha, revenue in zip(result.alphas, result.relative_revenue("honest")):
            assert revenue == pytest.approx(alpha, abs=0.04)

    def test_large_selfish_pool_beats_honest(self, result):
        assert result.relative_revenue("selfish")[-1] > result.relative_revenue("honest")[-1]
        assert result.crossover_alpha("selfish") == pytest.approx(0.40)

    def test_honest_has_no_crossover(self, result):
        assert result.crossover_alpha("honest") is None

    def test_report_renders_one_column_per_strategy(self, result):
        text = result.report()
        assert "Strategy comparison" in text
        for strategy in result.strategies:
            assert strategy.replace("_", " ") in text

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ParameterError):
            run_strategy_comparison(strategies=("quantum",), alphas=(0.3,))

    def test_markov_backend_rejected_for_stubborn_strategies_up_front(self):
        with pytest.raises(ParameterError, match="no transition model"):
            run_strategy_comparison(simulation_backend="markov", alphas=(0.3,))

    def test_markov_backend_accepted_for_supported_strategies(self):
        result = run_strategy_comparison(
            strategies=("honest", "selfish"),
            alphas=(0.3,),
            simulation_blocks=2000,
            simulation_runs=1,
            simulation_backend="markov",
        )
        assert result.backend == "markov"
        assert result.relative_revenue("honest")[0] == pytest.approx(0.3, abs=0.04)

    def test_fast_mode_shrinks_the_run(self):
        result = run_strategy_comparison(fast=True, strategies=("selfish",))
        assert len(result.alphas) <= 3


class TestFigure9SimulationOverlay:
    def test_overlay_tracks_the_ethereum_analysis(self):
        result = run_figure9(
            alphas=(0.3,),
            include_simulation=True,
            simulation_blocks=5000,
            simulation_runs=1,
            simulation_backend="markov",
            max_lead=30,
        )
        assert result.simulation is not None
        analytical = result.sweeps["Ku(.)"].points[0].pool_absolute
        simulated = result.simulation.pool_absolute_scenario1()[0]
        assert simulated == pytest.approx(analytical, abs=0.05)
        assert "Ku(.) pool (sim)" in result.report()

    def test_default_is_analysis_only(self):
        result = run_figure9(fast=True)
        assert result.simulation is None


class TestFigure10Workers:
    def test_parallel_solve_matches_serial(self):
        serial = run_figure10(gammas=[0.2, 0.8], max_lead=25)
        parallel = run_figure10(gammas=[0.2, 0.8], max_lead=25, max_workers=2)
        for first, second in zip(serial.points, parallel.points):
            assert first.ethereum_scenario1.alpha_star == second.ethereum_scenario1.alpha_star
            assert first.ethereum_scenario2.alpha_star == second.ethereum_scenario2.alpha_star


class TestNetworkDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_network(
            latency_means=(0.0, 0.4),
            two_pool_grid=((0.2, 0.2),),
            simulation_blocks=4000,
            simulation_runs=2,
            max_lead=30,
        )

    def test_zero_latency_point_recovers_the_configured_gamma(self, result):
        first = result.latency_points[0]
        assert first.mean_delay == 0.0
        assert first.effective_gamma.mean == pytest.approx(result.gamma, abs=0.12)

    def test_latency_erodes_effective_gamma(self, result):
        gammas = result.effective_gammas()
        assert gammas[-1] < gammas[0]

    def test_model_closes_the_loop_at_the_measured_gamma(self, result):
        for point in result.latency_points:
            assert point.predicted_revenue is not None
            assert point.relative_revenue.mean == pytest.approx(
                point.predicted_revenue, abs=0.05
            )

    def test_two_pool_shares_are_consistent(self, result):
        point = result.two_pool_points[0]
        total = point.pool_revenues[0].mean + point.pool_revenues[1].mean
        assert 0.0 < total < 1.0
        assert point.honest_revenue == pytest.approx(1.0 - total)

    def test_report_renders_both_tables(self, result):
        text = result.report()
        assert "emergent tie-breaking" in text
        assert "two selfish pools" in text
        assert "effective gamma" in text

    def test_fast_mode_shrinks_the_grids(self):
        result = run_network(fast=True)
        assert len(result.latency_points) <= 3
        assert len(result.two_pool_points) <= 1

    def test_parallel_runs_match_serial(self):
        serial = run_network(
            latency_means=(0.1,), two_pool_grid=(), simulation_blocks=1500,
            simulation_runs=2, max_lead=25,
        )
        parallel = run_network(
            latency_means=(0.1,), two_pool_grid=(), simulation_blocks=1500,
            simulation_runs=2, max_lead=25, max_workers=2,
        )
        assert (
            serial.latency_points[0].relative_revenue.mean
            == parallel.latency_points[0].relative_revenue.mean
        )


class TestDiscussionDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_discussion(fast=True)

    def test_proposal_raises_both_thresholds(self, result):
        assert result.improvement_scenario1() > 0.05
        assert result.improvement_scenario2() > 0.05

    def test_threshold_values_match_paper(self, result):
        assert result.current_scenario1.alpha_star == pytest.approx(0.054, abs=0.01)
        assert result.proposed_scenario1.alpha_star == pytest.approx(0.163, abs=0.01)
        assert result.current_scenario2.alpha_star == pytest.approx(0.270, abs=0.02)
        assert result.proposed_scenario2.alpha_star == pytest.approx(0.356, abs=0.02)

    def test_report_quotes_paper_numbers(self, result):
        text = result.report()
        assert "0.054" in text and "0.163" in text

    def test_parallel_solve_matches_serial(self, result):
        parallel = run_discussion(fast=True, max_workers=2)
        assert parallel.current_scenario1.alpha_star == result.current_scenario1.alpha_star
        assert parallel.proposed_scenario2.alpha_star == result.proposed_scenario2.alpha_star
