"""Unit tests for :mod:`repro.markov.state`."""

from __future__ import annotations

import pytest

from repro.errors import StateSpaceError
from repro.markov.state import State, StateSpace, ZERO_STATE, enumerate_states


class TestState:
    def test_lead(self):
        assert State(5, 2).lead == 3
        assert State(0, 0).lead == 0

    def test_negative_lengths_rejected(self):
        with pytest.raises(StateSpaceError):
            State(-1, 0)
        with pytest.raises(StateSpaceError):
            State(0, -2)

    @pytest.mark.parametrize("state", [State(0, 0), State(1, 0), State(1, 1), State(2, 0), State(5, 3)])
    def test_reachable_states_are_valid(self, state):
        assert state.is_valid()

    @pytest.mark.parametrize("state", [State(1, 2), State(2, 1), State(3, 2), State(0, 1)])
    def test_unreachable_states_are_invalid(self, state):
        assert not state.is_valid()

    def test_zero_state_constant(self):
        assert ZERO_STATE == State(0, 0)

    def test_str(self):
        assert str(State(3, 1)) == "(3,1)"

    def test_ordering_is_deterministic(self):
        assert State(1, 0) < State(2, 0) < State(2, 1)


class TestEnumeration:
    def test_small_enumeration_is_exactly_the_reachable_set(self):
        states = enumerate_states(3)
        assert states == [State(0, 0), State(1, 0), State(1, 1), State(2, 0), State(3, 0), State(3, 1)]

    def test_all_enumerated_states_are_valid(self):
        assert all(state.is_valid() for state in enumerate_states(12))

    def test_count_grows_quadratically(self):
        # 3 special states plus sum_{i=2..n} (i-1) states.
        for max_lead in (2, 5, 10, 30):
            expected = 3 + sum(i - 1 for i in range(2, max_lead + 1))
            assert len(enumerate_states(max_lead)) == expected

    def test_max_lead_below_two_rejected(self):
        with pytest.raises(StateSpaceError):
            enumerate_states(1)


class TestStateSpace:
    def test_round_trip_between_states_and_indices(self):
        space = StateSpace(8)
        for index, state in enumerate(space.states):
            assert space.index_of(state) == index
            assert space.state_at(index) == state

    def test_contains(self):
        space = StateSpace(5)
        assert State(4, 2) in space
        assert State(6, 0) not in space

    def test_unknown_state_raises(self):
        with pytest.raises(StateSpaceError):
            StateSpace(5).index_of(State(10, 0))

    def test_bad_index_raises(self):
        space = StateSpace(5)
        with pytest.raises(StateSpaceError):
            space.state_at(len(space) + 3)

    def test_lead_states(self):
        space = StateSpace(6)
        lead_two = space.lead_states(2)
        assert State(2, 0) in lead_two
        assert State(6, 4) in lead_two
        assert all(state.lead == 2 for state in lead_two)

    def test_iteration_matches_states_tuple(self):
        space = StateSpace(4)
        assert list(space) == list(space.states)

    def test_describe_mentions_truncation(self):
        assert "max_lead=7" in StateSpace(7).describe()


class TestIntegerEncoding:
    def test_codes_match_enumeration_order(self):
        from repro.markov.state import decode_state

        states = enumerate_states(40)
        for position, state in enumerate(states):
            assert state.encode() == position
            assert decode_state(position) == state

    def test_codes_are_truncation_independent(self):
        small = enumerate_states(10)
        large = enumerate_states(50)
        for state in small:
            assert state in large[: len(small)]
            assert state.encode() == large.index(state)

    def test_unreachable_state_has_no_code(self):
        with pytest.raises(StateSpaceError):
            State(3, 2).encode()
        with pytest.raises(StateSpaceError):
            State(0, 1).encode()

    def test_negative_code_rejected(self):
        from repro.markov.state import decode_state

        with pytest.raises(StateSpaceError):
            decode_state(-5)
