"""Unit tests for simulation result containers and aggregation."""

from __future__ import annotations

import pytest

from repro.analysis.absolute import Scenario
from repro.chain.rewards import ChainSettlement
from repro.errors import SimulationError
from repro.params import MiningParams
from repro.rewards.breakdown import PartyRewards, RevenueSplit
from repro.simulation.config import SimulationConfig
from repro.simulation.metrics import SimulationResult, aggregate_results

CONFIG = SimulationConfig(params=MiningParams(alpha=0.3, gamma=0.5), num_blocks=100)


def result(
    *,
    pool=PartyRewards(static=30.0, uncle=3.0, nephew=0.5),
    honest=PartyRewards(static=60.0, uncle=4.0, nephew=1.0),
    regular=90.0,
    uncle=7.0,
    stale=3.0,
    distances=None,
) -> SimulationResult:
    return SimulationResult(
        config=CONFIG,
        pool_rewards=pool,
        honest_rewards=honest,
        regular_blocks=regular,
        pool_regular_blocks=regular / 3,
        honest_regular_blocks=2 * regular / 3,
        uncle_blocks=uncle,
        pool_uncle_blocks=2.0,
        honest_uncle_blocks=uncle - 2.0,
        stale_blocks=stale,
        total_blocks=regular + uncle + stale,
        num_events=100,
        honest_uncle_distance_counts=distances if distances is not None else {1: 3.0, 2: 2.0},
    )


class TestSimulationResult:
    def test_relative_revenue(self):
        value = result().relative_pool_revenue
        assert value == pytest.approx(33.5 / 98.5)

    def test_absolute_revenue_scenarios(self):
        r = result()
        assert r.pool_absolute_revenue(Scenario.REGULAR_ONLY) == pytest.approx(33.5 / 90.0)
        assert r.pool_absolute_revenue(Scenario.REGULAR_PLUS_UNCLE) == pytest.approx(33.5 / 97.0)
        assert r.total_absolute_revenue(Scenario.REGULAR_ONLY) == pytest.approx(98.5 / 90.0)

    def test_zero_normaliser_raises(self):
        empty = result(regular=0.0, uncle=0.0, stale=0.0)
        with pytest.raises(SimulationError):
            empty.pool_absolute_revenue(Scenario.REGULAR_ONLY)

    def test_degenerate_run_raises_consistently(self):
        """A run that paid no reward raises for relative *and* absolute revenue."""
        broke = result(
            pool=PartyRewards(),
            honest=PartyRewards(),
            regular=0.0,
            uncle=0.0,
            stale=5.0,
        )
        with pytest.raises(SimulationError, match="no rewards"):
            broke.relative_pool_revenue
        with pytest.raises(SimulationError):
            broke.pool_absolute_revenue(Scenario.REGULAR_ONLY)
        # Block-statistic fractions stay defined: the run did mine blocks.
        assert broke.stale_fraction == 1.0

    def test_alpha_zero_extreme_still_has_defined_relative_revenue(self):
        """Regression: an alpha=0 run pays the pool nothing but is not degenerate."""
        from repro.simulation.engine import ChainSimulator

        config = SimulationConfig(params=MiningParams(alpha=0.0, gamma=0.5), num_blocks=400)
        outcome = ChainSimulator(config).run()
        assert outcome.pool_rewards.total == 0.0
        assert outcome.relative_pool_revenue == 0.0

    def test_real_degenerate_run_raises_for_relative_and_absolute(self):
        """Regression: a run whose warm-up discards every settled reward raises.

        A large selfish pool loses blocks to stale forks, so the main chain ends
        below the warm-up height and the settlement pays nothing at all —
        previously ``relative_pool_revenue`` reported a silent 0.0 here while
        ``pool_absolute_revenue`` raised.
        """
        from repro.simulation.engine import ChainSimulator

        config = SimulationConfig(
            params=MiningParams(alpha=0.45, gamma=0.0),
            num_blocks=60,
            warmup_blocks=59,
            seed=0,
        )
        outcome = ChainSimulator(config).run()
        assert outcome.total_reward == 0.0
        with pytest.raises(SimulationError, match="no rewards"):
            outcome.relative_pool_revenue
        with pytest.raises(SimulationError):
            outcome.pool_absolute_revenue(Scenario.REGULAR_ONLY)

    def test_fractions(self):
        r = result()
        assert r.stale_fraction == pytest.approx(3.0 / 100.0)
        assert r.uncle_fraction == pytest.approx(7.0 / 100.0)

    def test_distance_distribution_normalised(self):
        distribution = result().honest_uncle_distance_distribution()
        assert distribution == {1: pytest.approx(0.6), 2: pytest.approx(0.4)}
        assert result().expected_honest_uncle_distance() == pytest.approx(1.4)

    def test_empty_distance_distribution(self):
        r = result(distances={})
        assert r.honest_uncle_distance_distribution() == {}
        assert r.expected_honest_uncle_distance() == 0.0

    def test_from_settlement_copies_all_counts(self):
        settlement = ChainSettlement(
            split=RevenueSplit(pool=PartyRewards(static=5.0), honest=PartyRewards(static=10.0)),
            per_miner={},
            regular_blocks=15,
            pool_regular_blocks=5,
            honest_regular_blocks=10,
            uncle_blocks=2,
            pool_uncle_blocks=1,
            honest_uncle_blocks=1,
            stale_blocks=1,
            total_blocks=18,
            honest_uncle_distance_counts={2: 1},
            pool_uncle_distance_counts={1: 1},
        )
        converted = SimulationResult.from_settlement(CONFIG, settlement, num_events=18)
        assert converted.regular_blocks == 15.0
        assert converted.pool_rewards.static == 5.0
        assert converted.honest_uncle_distance_counts == {2: 1}
        assert converted.num_events == 18


class TestAggregation:
    def test_aggregate_reports_mean_and_std(self):
        first = result()
        second = result(pool=PartyRewards(static=40.0, uncle=3.0, nephew=0.5))
        aggregate = aggregate_results([first, second])
        assert aggregate.num_runs == 2
        expected_mean = (first.pool_absolute_revenue(Scenario.REGULAR_ONLY) + second.pool_absolute_revenue(Scenario.REGULAR_ONLY)) / 2
        assert aggregate.pool_absolute_scenario1.mean == pytest.approx(expected_mean)
        assert aggregate.pool_absolute_scenario1.std > 0.0

    def test_single_run_has_zero_std(self):
        aggregate = aggregate_results([result()])
        assert aggregate.pool_absolute_scenario1.std == 0.0
        assert aggregate.pool_absolute_scenario1.count == 1

    def test_empty_aggregation_rejected(self):
        with pytest.raises(SimulationError):
            aggregate_results([])

    def test_single_run_aggregate_reports_every_field(self):
        """n=1: every MeanStd equals the run's own value with zero spread."""
        single = result()
        aggregate = aggregate_results([single])
        assert aggregate.num_runs == 1
        for stats, value in [
            (aggregate.relative_pool_revenue, single.relative_pool_revenue),
            (aggregate.pool_absolute_scenario1, single.pool_absolute_revenue(Scenario.REGULAR_ONLY)),
            (aggregate.honest_absolute_scenario2, single.honest_absolute_revenue(Scenario.REGULAR_PLUS_UNCLE)),
            (aggregate.uncle_fraction, single.uncle_fraction),
            (aggregate.stale_fraction, single.stale_fraction),
            (aggregate.expected_honest_uncle_distance, single.expected_honest_uncle_distance()),
        ]:
            assert stats.count == 1
            assert stats.std == 0.0
            assert stats.mean == pytest.approx(value)
        assert (
            aggregate.honest_uncle_distance_distribution()
            == single.honest_uncle_distance_distribution()
        )

    def test_aggregating_a_degenerate_run_raises(self):
        """A zero-reward member makes the aggregate fail loudly, not average a lie."""
        broke = result(pool=PartyRewards(), honest=PartyRewards(), regular=0.0, uncle=0.0, stale=1.0)
        with pytest.raises(SimulationError):
            aggregate_results([result(), broke])

    def test_pooled_distance_distribution(self):
        first = result(distances={1: 1.0})
        second = result(distances={2: 1.0})
        aggregate = aggregate_results([first, second])
        assert aggregate.honest_uncle_distance_distribution() == {
            1: pytest.approx(0.5),
            2: pytest.approx(0.5),
        }

    def test_mean_std_string_representation(self):
        aggregate = aggregate_results([result(), result()])
        assert "n=2" in str(aggregate.relative_pool_revenue)
