"""Unit tests for :mod:`repro.chain.block`."""

from __future__ import annotations

from repro.chain.block import GENESIS_ID, Block, MinerKind, make_genesis


class TestMinerKind:
    def test_pool_flags(self):
        assert MinerKind.POOL.is_pool
        assert not MinerKind.POOL.is_honest

    def test_honest_flags(self):
        assert MinerKind.HONEST.is_honest
        assert not MinerKind.HONEST.is_pool


class TestBlock:
    def test_genesis_properties(self):
        genesis = make_genesis()
        assert genesis.block_id == GENESIS_ID
        assert genesis.is_genesis
        assert genesis.height == 0
        assert genesis.parent_id is None
        assert genesis.uncle_ids == ()

    def test_non_genesis_block(self):
        block = Block(block_id=5, parent_id=2, height=3, miner=MinerKind.POOL, created_at=7)
        assert not block.is_genesis
        assert block.height == 3

    def test_str_marks_miner(self):
        pool_block = Block(block_id=1, parent_id=0, height=1, miner=MinerKind.POOL)
        honest_block = Block(block_id=2, parent_id=0, height=1, miner=MinerKind.HONEST)
        assert "P" in str(pool_block)
        assert "H" in str(honest_block)
        assert "G" in str(make_genesis())

    def test_blocks_are_immutable(self):
        block = Block(block_id=1, parent_id=0, height=1, miner=MinerKind.POOL)
        try:
            block.height = 2  # type: ignore[misc]
        except AttributeError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("Block should be frozen")

    def test_uncle_ids_default_to_empty_tuple(self):
        block = Block(block_id=1, parent_id=0, height=1, miner=MinerKind.HONEST)
        assert block.uncle_ids == ()
