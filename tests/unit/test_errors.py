"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            errors.ParameterError,
            errors.StateSpaceError,
            errors.SolverError,
            errors.ConvergenceError,
            errors.ChainStructureError,
            errors.UnknownBlockError,
            errors.UncleRuleError,
            errors.SimulationError,
            errors.ExperimentError,
            errors.ExecutionError,
            errors.WorkerCrashError,
            errors.RunTimeoutError,
            errors.RetryExhaustedError,
            errors.StoreLeaseError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exception_type):
        assert issubclass(exception_type, errors.ReproError)

    def test_parameter_error_is_value_error(self):
        assert issubclass(errors.ParameterError, ValueError)

    def test_unknown_block_error_is_key_error(self):
        assert issubclass(errors.UnknownBlockError, KeyError)

    def test_convergence_error_is_solver_error(self):
        assert issubclass(errors.ConvergenceError, errors.SolverError)

    def test_uncle_rule_error_is_chain_structure_error(self):
        assert issubclass(errors.UncleRuleError, errors.ChainStructureError)

    def test_catching_base_class_catches_subclasses(self):
        with pytest.raises(errors.ReproError):
            raise errors.SimulationError("boom")

    @pytest.mark.parametrize(
        "exception_type",
        [
            errors.WorkerCrashError,
            errors.RunTimeoutError,
            errors.RetryExhaustedError,
            errors.StoreLeaseError,
        ],
    )
    def test_execution_subclasses_derive_from_execution_error(self, exception_type):
        assert issubclass(exception_type, errors.ExecutionError)

    def test_execution_error_is_runtime_error(self):
        assert issubclass(errors.ExecutionError, RuntimeError)


class TestExecutionErrorMessages:
    """The dispatcher/store failure messages callers grep their logs for."""

    def test_task_failure_crash_message_names_pid_exit_code_and_task(self):
        from repro.utils.resilient import TaskFailure

        failure = TaskFailure(
            task_id=7,
            kind="crash",
            message="worker (pid 1234) died with exit code -9 while running task 7",
            attempts=3,
        )
        error = failure.error()
        assert isinstance(error, errors.WorkerCrashError)
        assert "pid 1234" in str(error)
        assert "exit code -9" in str(error)
        assert "task 7" in str(error)

    def test_task_failure_timeout_message_names_budget(self):
        from repro.utils.resilient import TaskFailure

        failure = TaskFailure(
            task_id=3,
            kind="timeout",
            message="task 3 exceeded its 2.5s wall-clock timeout and its worker was killed",
            attempts=1,
        )
        error = failure.error()
        assert isinstance(error, errors.RunTimeoutError)
        assert "2.5s" in str(error)
        assert "wall-clock timeout" in str(error)

    def test_task_failure_generic_kind_maps_to_execution_error(self):
        from repro.utils.resilient import TaskFailure

        failure = TaskFailure(
            task_id=0, kind="error", message="ValueError: boom", attempts=2
        )
        error = failure.error()
        assert type(error) is errors.ExecutionError
        assert "ValueError: boom" in str(error)

    def test_exhausted_error_counts_attempts_and_carries_last_failure(self):
        from repro.utils.resilient import TaskFailure

        failure = TaskFailure(
            task_id=11, kind="error", message="ValueError: boom", attempts=3
        )
        exhausted = failure.exhausted_error()
        assert isinstance(exhausted, errors.RetryExhaustedError)
        text = str(exhausted)
        assert "task 11" in text
        assert "3 attempt(s)" in text
        assert "ValueError: boom" in text
