"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            errors.ParameterError,
            errors.StateSpaceError,
            errors.SolverError,
            errors.ConvergenceError,
            errors.ChainStructureError,
            errors.UnknownBlockError,
            errors.UncleRuleError,
            errors.SimulationError,
            errors.ExperimentError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exception_type):
        assert issubclass(exception_type, errors.ReproError)

    def test_parameter_error_is_value_error(self):
        assert issubclass(errors.ParameterError, ValueError)

    def test_unknown_block_error_is_key_error(self):
        assert issubclass(errors.UnknownBlockError, KeyError)

    def test_convergence_error_is_solver_error(self):
        assert issubclass(errors.ConvergenceError, errors.SolverError)

    def test_uncle_rule_error_is_chain_structure_error(self):
        assert issubclass(errors.UncleRuleError, errors.ChainStructureError)

    def test_catching_base_class_catches_subclasses(self):
        with pytest.raises(errors.ReproError):
            raise errors.SimulationError("boom")
