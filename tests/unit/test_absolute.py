"""Unit tests for scenario normalisation and absolute revenues."""

from __future__ import annotations

import pytest

from repro.analysis.absolute import Scenario, absolute_revenue, scenario_normaliser
from repro.analysis.revenue import RevenueRates
from repro.errors import ParameterError
from repro.params import MiningParams
from repro.rewards.breakdown import PartyRewards, RevenueSplit


def synthetic_rates(
    *, pool_total=0.4, honest_total=0.5, regular=0.8, uncle=0.15, stale=0.05
) -> RevenueRates:
    return RevenueRates(
        params=MiningParams(alpha=0.3, gamma=0.5),
        split=RevenueSplit(pool=PartyRewards(static=pool_total), honest=PartyRewards(static=honest_total)),
        regular_rate=regular,
        uncle_rate=uncle,
        pool_uncle_rate=uncle / 3,
        honest_uncle_rate=2 * uncle / 3,
        honest_uncle_distance_rates={1: 2 * uncle / 3},
        stale_rate=stale,
    )


class TestScenario:
    def test_normaliser_scenario1_uses_regular_rate(self):
        rates = synthetic_rates()
        assert scenario_normaliser(rates, Scenario.REGULAR_ONLY) == pytest.approx(0.8)

    def test_normaliser_scenario2_adds_uncle_rate(self):
        rates = synthetic_rates()
        assert scenario_normaliser(rates, Scenario.REGULAR_PLUS_UNCLE) == pytest.approx(0.95)

    def test_describe(self):
        assert "regular" in Scenario.REGULAR_ONLY.describe()
        assert "EIP100" in Scenario.REGULAR_PLUS_UNCLE.describe()


class TestAbsoluteRevenue:
    def test_scenario1_division(self):
        result = absolute_revenue(synthetic_rates(), Scenario.REGULAR_ONLY)
        assert result.pool == pytest.approx(0.4 / 0.8)
        assert result.honest == pytest.approx(0.5 / 0.8)
        assert result.total == pytest.approx(0.9 / 0.8)

    def test_scenario2_division(self):
        result = absolute_revenue(synthetic_rates(), Scenario.REGULAR_PLUS_UNCLE)
        assert result.pool == pytest.approx(0.4 / 0.95)

    def test_scenario2_never_exceeds_scenario1(self):
        rates = synthetic_rates()
        scenario1 = absolute_revenue(rates, Scenario.REGULAR_ONLY)
        scenario2 = absolute_revenue(rates, Scenario.REGULAR_PLUS_UNCLE)
        assert scenario2.pool <= scenario1.pool

    def test_profitability_reference_is_alpha(self):
        result = absolute_revenue(synthetic_rates(), Scenario.REGULAR_ONLY)
        assert result.honest_mining_reference == pytest.approx(0.3)
        assert result.pool_gain == pytest.approx(result.pool - 0.3)
        assert result.profitable == (result.pool >= 0.3)

    def test_zero_normaliser_rejected(self):
        rates = synthetic_rates(regular=0.0, uncle=0.0)
        with pytest.raises(ParameterError):
            absolute_revenue(rates, Scenario.REGULAR_ONLY)

    def test_default_scenario_is_regular_only(self):
        rates = synthetic_rates()
        assert absolute_revenue(rates).pool == pytest.approx(
            absolute_revenue(rates, Scenario.REGULAR_ONLY).pool
        )


class TestWithRealModel:
    def test_honest_system_earns_exactly_one_per_block(self, ethereum_model):
        # With a vanishing pool there are (almost) no stale blocks, so the total
        # absolute revenue per regular block approaches 1.
        rates = ethereum_model.revenue_rates(MiningParams(alpha=0.001, gamma=0.5))
        result = absolute_revenue(rates, Scenario.REGULAR_ONLY)
        assert result.total == pytest.approx(1.0, abs=1e-3)

    def test_attack_inflates_total_payout_under_scenario1(self, ethereum_model):
        rates = ethereum_model.revenue_rates(MiningParams(alpha=0.4, gamma=0.5))
        result = absolute_revenue(rates, Scenario.REGULAR_ONLY)
        assert result.total > 1.0
