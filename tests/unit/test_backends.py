"""Unit tests for the simulator-backend registry."""

from __future__ import annotations

import pytest

from repro.backends import (
    ChainBackend,
    MarkovBackend,
    NetworkBackend,
    Simulator,
    SimulatorBackend,
    available_backends,
    get_backend,
    make_simulator,
    register_backend,
)
from repro.errors import SimulationError
from repro.params import MiningParams
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import ChainSimulator
from repro.simulation.fast import MarkovMonteCarlo

CONFIG = SimulationConfig(params=MiningParams(alpha=0.3, gamma=0.5), num_blocks=500, seed=1)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert available_backends() == ("chain", "markov", "network")

    def test_get_backend_returns_named_instances(self):
        for name, backend_type in (
            ("chain", ChainBackend),
            ("markov", MarkovBackend),
            ("network", NetworkBackend),
        ):
            backend = get_backend(name)
            assert isinstance(backend, backend_type)
            assert backend.name == name
            assert isinstance(backend, SimulatorBackend)

    def test_unknown_backend_lists_available(self):
        with pytest.raises(SimulationError) as excinfo:
            get_backend("quantum")
        message = str(excinfo.value)
        assert "unknown simulator backend 'quantum'" in message
        for name in available_backends():
            assert name in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SimulationError):
            register_backend(ChainBackend())


class TestMakeSimulator:
    def test_builds_the_matching_engine(self):
        assert isinstance(make_simulator(CONFIG, "chain"), ChainSimulator)
        assert isinstance(make_simulator(CONFIG, "markov"), MarkovMonteCarlo)
        from repro.network.simulator import NetworkSimulator

        assert isinstance(make_simulator(CONFIG, "network"), NetworkSimulator)

    def test_built_simulators_satisfy_the_protocol(self):
        for name in available_backends():
            assert isinstance(make_simulator(CONFIG, name), Simulator)

    def test_simulators_run(self):
        result = make_simulator(CONFIG, "markov").run()
        assert result.total_blocks == CONFIG.num_blocks

    def test_runner_backends_tuple_mirrors_the_registry(self):
        from repro.simulation.runner import BACKENDS

        assert BACKENDS == available_backends()
