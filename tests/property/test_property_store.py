"""Property tests for the result store: stable keys, exact round-trips, corruption.

The store's three load-bearing claims, each pinned here over randomised inputs:

1. **Fingerprint stability** — the content address of a configuration is a pure
   function of its values: independent of dictionary key order, of the order
   fields are assembled in, and of the Python process that computes it (no
   ``PYTHONHASHSEED`` leakage — verified against a subprocess with a different
   hash seed).
2. **Cache round-trip** — loading a stored result reproduces the direct run
   bit-for-bit, for both the plain and the network result shapes.
3. **Corruption safety** — any byte-level damage to an entry reads as a cache
   miss, after which recomputation and re-storing restore the exact result.
4. **Compaction transparency** — moving entries into the pack tier changes
   nothing observable: a compacted entry loads bit-identically to the loose
   one, and a damaged pack row degrades to recompute exactly like (3).
"""

from __future__ import annotations

import json
import sqlite3
import subprocess
import sys
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.params import MiningParams
from repro.rewards.schedule import EthereumByzantiumSchedule, FlatUncleSchedule
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_once
from repro.store import (
    SIMULATION_NAMESPACE,
    ResultStore,
    canonical_json,
    config_fingerprint,
    fingerprint_payload,
    hash_payload,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


def small_configs() -> st.SearchStrategy[SimulationConfig]:
    schedules = st.sampled_from(
        [EthereumByzantiumSchedule(), FlatUncleSchedule(0.5), FlatUncleSchedule(0.25)]
    )
    return st.builds(
        SimulationConfig,
        params=st.builds(
            MiningParams,
            alpha=st.sampled_from([0.1, 0.25, 0.4]),
            gamma=st.sampled_from([0.0, 0.5, 1.0]),
        ),
        schedule=schedules,
        num_blocks=st.integers(min_value=50, max_value=400),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        strategy=st.sampled_from(["honest", "selfish", "lead_stubborn"]),
    )


backends = st.sampled_from(["chain", "markov", "network"])


class TestFingerprintStability:
    @given(config=small_configs(), backend=backends)
    @settings(max_examples=25, deadline=None)
    def test_fingerprint_is_reproducible_within_the_process(self, config, backend):
        if backend == "markov" and config.strategy_name == "lead_stubborn":
            backend = "chain"  # markov has no stubborn model; the key is still defined
        assert config_fingerprint(config, backend) == config_fingerprint(config, backend)

    @given(config=small_configs())
    @settings(max_examples=25, deadline=None)
    def test_fingerprint_is_independent_of_payload_key_order(self, config):
        payload = fingerprint_payload(config, "chain")
        reversed_payload = dict(reversed(list(payload.items())))
        assert list(payload) != list(reversed_payload)
        assert hash_payload(payload) == hash_payload(reversed_payload)

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_fingerprint_is_stable_across_process_restarts(self):
        """A subprocess with a different hash seed derives the identical key."""
        config = SimulationConfig(
            params=MiningParams(alpha=0.3, gamma=0.5),
            schedule=FlatUncleSchedule(0.5),
            num_blocks=200,
            seed=77,
            strategy="selfish",
        )
        expected = {
            backend: config_fingerprint(config, backend)
            for backend in ("chain", "markov", "network")
        }
        script = (
            "from repro.params import MiningParams\n"
            "from repro.rewards.schedule import FlatUncleSchedule\n"
            "from repro.simulation.config import SimulationConfig\n"
            "from repro.store import config_fingerprint\n"
            "import json\n"
            "config = SimulationConfig(params=MiningParams(alpha=0.3, gamma=0.5),\n"
            "    schedule=FlatUncleSchedule(0.5), num_blocks=200, seed=77, strategy='selfish')\n"
            "print(json.dumps({b: config_fingerprint(config, b)\n"
            "    for b in ('chain', 'markov', 'network')}))\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": SRC, "PYTHONHASHSEED": "12345"},
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert json.loads(completed.stdout) == expected


class TestCacheRoundTrip:
    @given(config=small_configs(), backend=backends, data=st.data())
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_cached_result_equals_direct_run(self, tmp_path_factory, config, backend, data):
        if backend == "markov" and config.strategy_name == "lead_stubborn":
            config = config.with_strategy("selfish")
        store = ResultStore(tmp_path_factory.mktemp("store"))
        direct = run_once(config, backend=backend)
        store.save_result(direct, backend)
        loaded = store.load_result(config, backend)
        assert loaded == direct

    @given(config=small_configs(), corruption=st.sampled_from(["truncate", "garbage", "tamper", "empty"]))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_corrupted_entry_falls_back_to_recompute(self, tmp_path_factory, config, corruption):
        if config.strategy_name not in ("honest", "selfish"):
            config = config.with_strategy("selfish")
        store = ResultStore(tmp_path_factory.mktemp("store"))
        direct = run_once(config, backend="markov")
        path = store.save_result(direct, "markov")
        text = path.read_text()
        if corruption == "truncate":
            path.write_text(text[: len(text) // 2])
        elif corruption == "garbage":
            path.write_text("\x00\xff this is not json")
        elif corruption == "empty":
            path.write_text("")
        else:
            envelope = json.loads(text)
            envelope["payload"]["total_blocks"] = -1.0
            path.write_text(json.dumps(envelope))
        assert store.load_result(config, "markov") is None
        recomputed = run_once(config, backend="markov")
        assert recomputed == direct
        store.save_result(recomputed, "markov")
        assert store.load_result(config, "markov") == direct


class TestPackRoundTrip:
    @given(config=small_configs(), backend=backends)
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_compacted_result_equals_direct_run(self, tmp_path_factory, config, backend):
        if backend == "markov" and config.strategy_name == "lead_stubborn":
            config = config.with_strategy("selfish")
        store = ResultStore(tmp_path_factory.mktemp("store"))
        direct = run_once(config, backend=backend)
        loose_path = store.save_result(direct, backend)
        report = store.compact()
        assert report.packed == 1
        assert not loose_path.exists()  # the entry now lives in the pack only
        assert store.load_result(config, backend) == direct
        assert store.has_result(config, backend)

    @given(config=small_configs())
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_corrupted_pack_row_falls_back_to_recompute(self, tmp_path_factory, config):
        if config.strategy_name not in ("honest", "selfish"):
            config = config.with_strategy("selfish")
        store = ResultStore(tmp_path_factory.mktemp("store"))
        direct = run_once(config, backend="markov")
        store.save_result(direct, "markov")
        store.compact()
        key = store.result_key(config, "markov")
        pack = store.packs.pack_path(SIMULATION_NAMESPACE, key[:2])
        with sqlite3.connect(pack) as connection:
            connection.execute(
                "UPDATE entries SET payload = ? WHERE key = ?", ('{"bad": 1}', key)
            )
        assert store.load_result(config, "markov") is None
        assert store.vacuum().removed_pack_rows == 1
        recomputed = run_once(config, backend="markov")
        assert recomputed == direct
        store.save_result(recomputed, "markov")
        assert store.load_result(config, "markov") == direct
