"""Property-based invariants of the batched event core's data structures.

The PR-6 event core swapped two hot representations without touching any
simulator semantics, and these suites pin the "without touching" half:

* the packed :class:`~repro.network.events.EventQueue` (int-coded
  ``(time, seq, kind, block_id, dst)`` tuples on a heap) must pop random
  schedules — including bursts of events at identical timestamps — in exactly
  the order the previous object queue produced: by time, then by scheduling
  order, with reserved sequence numbers slotting into the same total order;
* the watermark-plus-exceptions :class:`~repro.network.views.LocalView` must
  answer ``in``, ``len`` and iteration exactly like the ``set[int]`` it
  replaced, under arbitrary interleavings of adds and membership probes and
  across its internal compaction threshold.
"""

from __future__ import annotations

import heapq
from itertools import count

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.events import DELIVER, MINE, EventQueue
from repro.network.views import LocalView

# ---------------------------------------------------------------------------
# EventQueue vs a reference object queue
# ---------------------------------------------------------------------------

#: Coarse timestamps so random schedules collide often (same-time bursts are
#: exactly where packed tuple comparison could diverge from the object queue's
#: explicit tie-break field).
event_times = st.integers(min_value=0, max_value=5).map(lambda t: t / 2.0)

scheduled_events = st.lists(
    st.tuples(
        event_times,
        st.sampled_from([MINE, DELIVER]),
        st.integers(min_value=0, max_value=50),  # block_id
        st.integers(min_value=0, max_value=8),  # dst
    ),
    min_size=0,
    max_size=60,
)


class _ReferenceEvent:
    """The pre-packing representation: one object per event, ordered explicitly."""

    __slots__ = ("time", "order", "kind", "block_id", "dst")

    def __init__(self, time, order, kind, block_id, dst):
        self.time = time
        self.order = order
        self.kind = kind
        self.block_id = block_id
        self.dst = dst

    def __lt__(self, other):
        if self.time != other.time:
            return self.time < other.time
        return self.order < other.order


class TestPackedQueueMatchesObjectQueue:
    @given(events=scheduled_events)
    @settings(max_examples=200)
    def test_pop_order_identical_on_random_schedules(self, events):
        queue = EventQueue()
        reference: list[_ReferenceEvent] = []
        order = count()
        for time, kind, block_id, dst in events:
            queue.push(time, kind, block_id=block_id, dst=dst)
            heapq.heappush(
                reference, _ReferenceEvent(time, next(order), kind, block_id, dst)
            )
        while reference:
            expected = heapq.heappop(reference)
            time, _seq, kind, block_id, dst = queue.pop()
            assert (time, kind, block_id, dst) == (
                expected.time,
                expected.kind,
                expected.block_id,
                expected.dst,
            )
        assert not queue

    @given(events=scheduled_events, reservations=st.sets(st.integers(0, 59)))
    @settings(max_examples=100)
    def test_reservations_share_the_queue_total_order(self, events, reservations):
        """Reserved seqs rank exactly where a push at that moment would have."""
        queue = EventQueue()
        ranks = []
        for position, (time, kind, block_id, dst) in enumerate(events):
            if position in reservations:
                ranks.append((time, queue.reserve_seq()))
            ranks.append((time, queue.push(time, kind, block_id=block_id, dst=dst)))
        seqs = [seq for _, seq in ranks]
        assert seqs == sorted(seqs)  # allocation order is the tie-break order
        popped = [queue.pop() for _ in range(len(queue))]
        heap_ranks = [(time, seq) for time, seq, *_ in popped]
        assert heap_ranks == sorted(heap_ranks)


# ---------------------------------------------------------------------------
# LocalView vs a shadow set
# ---------------------------------------------------------------------------

#: Operation streams biased toward the sequential-id pattern the tree produces
#: (ids mostly arrive in order, with occasional far-ahead arrivals and gaps that
#: exercise the exception set and its compaction).
view_operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(min_value=0, max_value=400)),
        st.tuples(st.just("probe"), st.integers(min_value=0, max_value=450)),
    ),
    min_size=0,
    max_size=300,
)


class TestLocalViewMatchesSet:
    @given(operations=view_operations, genesis_id=st.integers(0, 3))
    @settings(max_examples=200)
    def test_membership_identical_under_random_interleavings(
        self, operations, genesis_id
    ):
        view = LocalView(genesis_id)
        # A fresh view knows everything up to the genesis id (lower ids do not
        # exist in a real run, where the genesis id is 0 and ids are sequential).
        shadow = set(range(genesis_id + 1))
        for op, block_id in operations:
            if op == "add":
                view.add(block_id)
                shadow.add(block_id)
            else:
                assert (block_id in view) == (block_id in shadow)
        probe_space = range(max(shadow) + 2)
        assert {b for b in probe_space if b in view} == shadow
        assert sorted(view) == sorted(shadow)
        assert len(view) == len(shadow)

    @given(extras=st.sets(st.integers(100, 1000), min_size=0, max_size=200))
    @settings(max_examples=50)
    def test_compaction_preserves_membership(self, extras):
        """Far-ahead arrivals force compaction; answers must never change."""
        view = LocalView(0)
        shadow = {0}
        for block_id in sorted(extras):
            view.add(block_id)
            shadow.add(block_id)
            assert block_id in view
        for block_id in range(1001):
            assert (block_id in view) == (block_id in shadow)

    @given(missing=st.sets(st.integers(0, 80)), watermark=st.integers(1, 100))
    @settings(max_examples=100)
    def test_from_state_equals_the_set_it_describes(self, missing, watermark):
        missing = {block_id for block_id in missing if block_id < watermark}
        view = LocalView.from_state(watermark, missing)
        expected = set(range(watermark)) - missing
        assert {b for b in range(watermark + 50) if b in view} == expected
        assert sorted(view) == sorted(expected)
