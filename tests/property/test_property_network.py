"""Property-based invariants of the event-driven network simulator.

For random topologies (pool counts and sizes, honest population), latency models
and seeds, one fully drained run must uphold:

* **prefix-consistent local views** — a miner never knows a block without knowing
  its parent (out-of-order deliveries are buffered until the parent arrives, and
  the queue is fully drained when the run ends, so the closure must hold for
  every miner's final view);
* **conservation of mined blocks** — per-miner mined counts sum to the run
  length, the tree holds exactly ``num_blocks`` non-genesis blocks, and the
  settlement classifies each exactly once;
* **the emergent tie ratio is a ratio** — ``effective_gamma`` is either ``None``
  (no contested block) or within ``[0, 1]``, whatever the topology.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.simulator import NetworkSimulator
from repro.network.topology import multi_pool_topology, single_pool_topology
from repro.params import MiningParams
from repro.simulation.config import SimulationConfig

latency_specs = st.one_of(
    st.just("zero"),
    st.floats(min_value=0.0, max_value=0.6, allow_nan=False).map(lambda d: f"constant:{d}"),
    st.floats(min_value=0.0, max_value=0.6, allow_nan=False).map(lambda m: f"exponential:{m}"),
)

pool_strategies = st.sampled_from(["selfish", "lead_stubborn", "equal_fork_stubborn"])


@st.composite
def topologies(draw):
    """A random single- or two-pool topology with 2-4 honest miners."""
    latency = draw(latency_specs)
    num_honest = draw(st.integers(min_value=2, max_value=4))
    if draw(st.booleans()):
        alpha = draw(st.floats(min_value=0.05, max_value=0.45, allow_nan=False))
        return single_pool_topology(
            alpha,
            strategy=draw(pool_strategies),
            num_honest=num_honest,
            latency=latency,
        )
    alphas = (
        draw(st.floats(min_value=0.05, max_value=0.3, allow_nan=False)),
        draw(st.floats(min_value=0.05, max_value=0.3, allow_nan=False)),
    )
    return multi_pool_topology(
        [(alphas[0], draw(pool_strategies)), (alphas[1], draw(pool_strategies))],
        num_honest=num_honest,
        latency=latency,
    )


network_cases = st.fixed_dictionaries(
    {
        "topology": topologies(),
        "gamma": st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        "seed": st.integers(min_value=0, max_value=2**32 - 1),
        "blocks": st.integers(min_value=100, max_value=350),
    }
)


def _run(case) -> tuple[NetworkSimulator, object]:
    config = SimulationConfig(
        # alpha is unused by an explicit topology but keeps the config valid and
        # supplies the gamma coin for same-instant ties.
        params=MiningParams(alpha=0.3, gamma=case["gamma"]),
        num_blocks=case["blocks"],
        seed=case["seed"],
        topology=case["topology"],
    )
    simulator = NetworkSimulator(config)
    result = simulator.run()
    return simulator, result


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=network_cases)
def test_local_views_are_prefix_consistent(case):
    """No miner's final view contains a block whose parent it does not know."""
    simulator, _ = _run(case)
    tree = simulator.tree
    for miner in simulator.miners:
        for block_id in miner.known:
            block = tree.block(block_id)
            if block.is_genesis:
                continue
            assert block.parent_id in miner.known, (
                f"miner {miner.spec.name} knows {block_id} but not its parent"
            )
        # Whatever is still buffered waits for a parent that genuinely never
        # arrived at this miner (a withheld block published only at finalise).
        for parent_id in miner.waiting:
            assert parent_id not in miner.known


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=network_cases)
def test_delivered_blocks_conserve_mined_blocks(case):
    """Mined-block counts close: per-miner counts, the tree, and the settlement."""
    simulator, result = _run(case)
    assert sum(miner.blocks_mined for miner in simulator.miners) == case["blocks"]
    non_genesis = [block for block in simulator.tree.blocks() if not block.is_genesis]
    assert len(non_genesis) == case["blocks"]
    assert (
        result.regular_blocks + result.uncle_blocks + result.stale_blocks
        == result.total_blocks
        == case["blocks"]
    )
    # Every block a miner knows exists in the tree, and its miner mined it.
    per_miner = {outcome.name: outcome.blocks_mined for outcome in result.miners}
    for miner in simulator.miners:
        assert per_miner[miner.spec.name] == miner.blocks_mined


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=network_cases)
def test_effective_gamma_is_a_ratio(case):
    """The emergent tie statistic is ``None`` or a fraction in [0, 1]."""
    _, result = _run(case)
    assert result.tie_wins >= 0 and result.tie_losses >= 0
    gamma = result.effective_gamma
    if result.tie_count == 0:
        assert gamma is None
    else:
        assert 0.0 <= gamma <= 1.0
