"""Property-based tests on the Markov chain and the reward-case engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reward_cases import transition_rewards
from repro.markov.state import State, StateSpace
from repro.markov.stationary import stationary_distribution
from repro.markov.transitions import build_selfish_mining_chain, transitions_from_state
from repro.params import MiningParams
from repro.rewards.schedule import EthereumByzantiumSchedule, FlatUncleSchedule

alphas = st.floats(min_value=0.01, max_value=0.49, allow_nan=False)
gammas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
SCHEDULE = EthereumByzantiumSchedule()


def reachable_states(max_lead: int = 12) -> list[State]:
    return list(StateSpace(max_lead).states)


class TestChainProperties:
    @settings(max_examples=15, deadline=None)
    @given(alpha=alphas, gamma=gammas)
    def test_stationary_distribution_is_a_probability_vector(self, alpha, gamma):
        params = MiningParams(alpha=alpha, gamma=gamma)
        chain = build_selfish_mining_chain(params, max_lead=25)
        result = stationary_distribution(chain)
        assert result.total_probability() == pytest.approx(1.0, abs=1e-9)
        assert all(probability >= -1e-12 for probability in result.probabilities)
        assert result.residual < 1e-8

    @settings(max_examples=15, deadline=None)
    @given(alpha=alphas, gamma=gammas)
    def test_exit_rate_is_one_from_every_state(self, alpha, gamma):
        params = MiningParams(alpha=alpha, gamma=gamma)
        for state in reachable_states():
            total = sum(t.rate for t in transitions_from_state(state, params, max_lead=1000))
            assert total == pytest.approx(1.0, abs=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(alpha=alphas, gamma=gammas)
    def test_transition_targets_are_reachable_states(self, alpha, gamma):
        params = MiningParams(alpha=alpha, gamma=gamma)
        for state in reachable_states():
            for transition in transitions_from_state(state, params, max_lead=1000):
                assert transition.target.is_valid(), transition

    @settings(max_examples=10, deadline=None)
    @given(alpha=st.floats(min_value=0.05, max_value=0.45), gamma=gammas)
    def test_pi00_decreases_when_the_pool_grows(self, alpha, gamma):
        params_small = MiningParams(alpha=alpha * 0.5, gamma=gamma)
        params_large = MiningParams(alpha=alpha, gamma=gamma)
        small = stationary_distribution(build_selfish_mining_chain(params_small, max_lead=25))
        large = stationary_distribution(build_selfish_mining_chain(params_large, max_lead=25))
        assert small.probability(State(0, 0)) >= large.probability(State(0, 0)) - 1e-9


class TestRewardCaseProperties:
    @settings(max_examples=20, deadline=None)
    @given(alpha=alphas, gamma=gammas)
    def test_destiny_probabilities_are_valid_for_every_transition(self, alpha, gamma):
        params = MiningParams(alpha=alpha, gamma=gamma)
        for state in reachable_states():
            for transition in transitions_from_state(state, params, max_lead=1000):
                record = transition_rewards(transition, params, SCHEDULE)
                assert -1e-12 <= record.regular_probability <= 1.0 + 1e-12
                assert -1e-12 <= record.uncle_probability <= 1.0 + 1e-12
                assert record.regular_probability + record.uncle_probability <= 1.0 + 1e-9
                assert 0.0 <= record.pool_mined_probability <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(alpha=alphas, gamma=gammas)
    def test_expected_static_reward_equals_regular_probability(self, alpha, gamma):
        # Static rewards are paid exactly to regular blocks, so summed over both
        # parties the expected static reward of a transition must equal Ks times the
        # probability that its target block becomes regular.
        params = MiningParams(alpha=alpha, gamma=gamma)
        for state in reachable_states():
            for transition in transitions_from_state(state, params, max_lead=1000):
                record = transition_rewards(transition, params, SCHEDULE)
                total_static = record.pool.static + record.honest.static
                assert total_static == pytest.approx(
                    SCHEDULE.static_reward * record.regular_probability, abs=1e-9
                )

    @settings(max_examples=20, deadline=None)
    @given(alpha=alphas, gamma=gammas, fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_uncle_and_nephew_rewards_are_bounded_by_the_schedule(self, alpha, gamma, fraction):
        params = MiningParams(alpha=alpha, gamma=gamma)
        schedule = FlatUncleSchedule(fraction)
        for state in reachable_states():
            for transition in transitions_from_state(state, params, max_lead=1000):
                record = transition_rewards(transition, params, schedule)
                assert record.pool.uncle + record.honest.uncle <= fraction + 1e-9
                assert record.pool.nephew + record.honest.nephew <= schedule.nephew_reward(1) + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(alpha=alphas, gamma=gammas)
    def test_nephew_reward_is_paid_exactly_when_an_uncle_is_created(self, alpha, gamma):
        params = MiningParams(alpha=alpha, gamma=gamma)
        for state in reachable_states():
            for transition in transitions_from_state(state, params, max_lead=1000):
                record = transition_rewards(transition, params, SCHEDULE)
                total_nephew = record.pool.nephew + record.honest.nephew
                if record.uncle_probability == 0.0:
                    assert total_nephew == 0.0
                else:
                    expected = SCHEDULE.nephew_reward(record.uncle_distance) * record.uncle_probability
                    assert total_nephew == pytest.approx(expected, abs=1e-9)
