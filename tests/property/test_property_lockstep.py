"""Lockstep property suite: ``ArrayBlockTree`` vs the object ``BlockTree``.

Both trees receive byte-identical random add/publish sequences and must stay
indistinguishable through every read API the simulators rely on — the block
records themselves, uncle candidate selection (with and without a local-view
filter), fork points, structural validation and reward settlement (including
warm-up masking and the zero-reward edges).  Ids are allocated sequentially by
both implementations, so the same action script addresses the same blocks on
each side.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.arrays import ArrayBlockTree
from repro.chain.block import GENESIS_ID, MinerKind
from repro.chain.blocktree import BlockTree
from repro.chain.fork_choice import LongestChainRule
from repro.chain.rewards import settle_rewards
from repro.chain.validation import validate_tree
from repro.rewards.schedule import EthereumByzantiumSchedule, FlatUncleSchedule

SCHEDULES = (EthereumByzantiumSchedule(), FlatUncleSchedule(0.5), FlatUncleSchedule(0.0))

# One action is (is_publish, target_choice, miner_selector, reference_uncles,
# published_at_creation).  ``target_choice`` picks the parent (mine) or the
# block to publish, modulo the current tree size.
actions = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=5),
        st.booleans(),
        st.booleans(),
    ),
    min_size=1,
    max_size=50,
)


def build_pair(action_list) -> tuple[ArrayBlockTree, BlockTree]:
    """Grow both trees through the same action script, asserting as we go."""
    # A tiny initial capacity forces several geometric growths per run.
    array_tree = ArrayBlockTree(capacity=2)
    object_tree = BlockTree()
    for step, (is_publish, choice, miner_sel, reference, published) in enumerate(action_list):
        size = len(object_tree)
        if is_publish and size > 1:
            block_id = choice % size
            array_tree.publish(block_id)
            object_tree.publish(block_id)
            continue
        parent_id = choice % size
        kind = MinerKind.POOL if miner_sel % 2 else MinerKind.HONEST
        miner_index = miner_sel // 2
        uncle_ids: list[int] = []
        if reference:
            uncle_ids = array_tree.select_uncles(parent_id, max_distance=6, max_count=2)
            assert uncle_ids == object_tree.select_uncles(
                parent_id, max_distance=6, max_count=2
            )
        array_id = array_tree.add_block_id(
            parent_id,
            kind,
            miner_index=miner_index,
            created_at=step,
            uncle_ids=uncle_ids,
            published=published,
        )
        object_id = object_tree.add_block(
            parent_id,
            kind,
            miner_index=miner_index,
            created_at=step,
            uncle_ids=uncle_ids,
            published=published,
        ).block_id
        assert array_id == object_id
    return array_tree, object_tree


class TestLockstepStructure:
    @settings(max_examples=60, deadline=None)
    @given(action_list=actions)
    def test_blocks_and_publication_identical(self, action_list):
        array_tree, object_tree = build_pair(action_list)
        assert len(array_tree) == len(object_tree)
        assert array_tree.blocks() == object_tree.blocks()
        assert array_tree.published_ids == object_tree.published_ids
        assert array_tree.unpublished_ids() == object_tree.unpublished_ids()
        for block in object_tree.blocks():
            assert array_tree.block(block.block_id) == block
            assert array_tree.children(block.block_id) == object_tree.children(block.block_id)

    @settings(max_examples=60, deadline=None)
    @given(action_list=actions)
    def test_both_trees_validate_and_agree_on_tips(self, action_list):
        array_tree, object_tree = build_pair(action_list)
        validate_tree(array_tree)  # vectorised fast path
        validate_tree(object_tree)  # object re-walk
        assert array_tree.tips() == object_tree.tips()
        assert array_tree.tips(published_only=True) == object_tree.tips(published_only=True)
        assert array_tree.max_height() == object_tree.max_height()
        rule = LongestChainRule()
        assert rule.best_tip(array_tree) == rule.best_tip(object_tree)

    @settings(max_examples=60, deadline=None)
    @given(action_list=actions)
    def test_fork_points_identical_for_every_pair_of_tips(self, action_list):
        array_tree, object_tree = build_pair(action_list)
        tip_ids = object_tree.tip_ids()
        for first in tip_ids:
            for second in tip_ids:
                assert array_tree.fork_point_id(first, second) == object_tree.fork_point_id(
                    first, second
                )
                assert array_tree.fork_point(first, second) == object_tree.fork_point(
                    first, second
                )


class TestLockstepUncles:
    @settings(max_examples=60, deadline=None)
    @given(action_list=actions)
    def test_candidate_sets_identical_from_every_parent(self, action_list):
        array_tree, object_tree = build_pair(action_list)
        published = object_tree.published_ids
        for block in object_tree.blocks():
            parent = block.block_id
            # Pool view (the whole tree) and an honest local view (published only).
            assert array_tree.select_uncles(
                parent, max_distance=6, max_count=2
            ) == object_tree.select_uncles(parent, max_distance=6, max_count=2)
            assert array_tree.select_uncles(
                parent, max_distance=6, max_count=2, known=published
            ) == object_tree.select_uncles(parent, max_distance=6, max_count=2, known=published)

    @settings(max_examples=60, deadline=None)
    @given(action_list=actions)
    def test_uncle_candidate_windows_identical(self, action_list):
        array_tree, object_tree = build_pair(action_list)
        top = object_tree.max_height()
        for height in range(1, top + 2):
            assert array_tree.uncle_candidates(
                height - 6, height - 1, published_only=True
            ) == object_tree.uncle_candidates(height - 6, height - 1, published_only=True)


class TestLockstepSettlement:
    @settings(max_examples=60, deadline=None)
    @given(action_list=actions, schedule=st.sampled_from(SCHEDULES))
    def test_settlements_bit_identical(self, action_list, schedule):
        array_tree, object_tree = build_pair(action_list)
        tip_id = LongestChainRule().best_tip(object_tree).block_id
        top = object_tree.max_height()
        # skip=0, a mid-chain warm-up mask, and a mask past the whole tree
        # (the zero-reward edge: every settlement field must collapse to zero).
        for skip in (0, top // 2 + 1, top + 1):
            array_settlement = settle_rewards(
                array_tree, tip_id, schedule, skip_heights_below=skip
            )
            object_settlement = settle_rewards(
                object_tree, tip_id, schedule, skip_heights_below=skip
            )
            assert array_settlement == object_settlement
        empty = settle_rewards(array_tree, tip_id, schedule, skip_heights_below=top + 1)
        assert empty.total_blocks == 0
        assert empty.split.total == 0.0
        assert empty.per_miner == {}

    @settings(max_examples=60, deadline=None)
    @given(action_list=actions)
    def test_settlement_from_genesis_tip(self, action_list):
        # Degenerate tip: settling at genesis makes every block stale.
        array_tree, object_tree = build_pair(action_list)
        array_settlement = settle_rewards(array_tree, GENESIS_ID, SCHEDULES[0])
        object_settlement = settle_rewards(object_tree, GENESIS_ID, SCHEDULES[0])
        assert array_settlement == object_settlement
        assert array_settlement.regular_blocks == 0
        assert array_settlement.stale_blocks == array_settlement.total_blocks
