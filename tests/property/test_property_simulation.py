"""Property-based tests for the simulators: conservation laws over random configurations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.absolute import Scenario
from repro.chain.validation import validate_tree
from repro.params import MiningParams
from repro.rewards.schedule import EthereumByzantiumSchedule, FlatUncleSchedule
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import ChainSimulator
from repro.simulation.fast import MarkovMonteCarlo

alphas = st.floats(min_value=0.0, max_value=0.45, allow_nan=False)
gammas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
fractions = st.floats(min_value=0.0, max_value=7 / 8, allow_nan=False)


def chain_config(alpha, gamma, seed, blocks=600, schedule=None) -> SimulationConfig:
    return SimulationConfig(
        params=MiningParams(alpha=alpha, gamma=gamma),
        schedule=schedule or EthereumByzantiumSchedule(),
        num_blocks=blocks,
        seed=seed,
    )


class TestChainSimulatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(alpha=alphas, gamma=gammas, seed=seeds)
    def test_block_conservation(self, alpha, gamma, seed):
        result = ChainSimulator(chain_config(alpha, gamma, seed)).run()
        assert result.regular_blocks + result.uncle_blocks + result.stale_blocks == result.total_blocks
        assert result.total_blocks == result.config.num_blocks

    @settings(max_examples=25, deadline=None)
    @given(alpha=alphas, gamma=gammas, seed=seeds)
    def test_final_tree_is_always_structurally_valid(self, alpha, gamma, seed):
        simulator = ChainSimulator(chain_config(alpha, gamma, seed, blocks=400))
        simulator.run()
        validate_tree(simulator.tree)

    @settings(max_examples=25, deadline=None)
    @given(alpha=alphas, gamma=gammas, seed=seeds, fraction=fractions)
    def test_rewards_are_bounded_by_block_counts(self, alpha, gamma, seed, fraction):
        schedule = FlatUncleSchedule(fraction)
        result = ChainSimulator(chain_config(alpha, gamma, seed, schedule=schedule)).run()
        static_paid = result.pool_rewards.static + result.honest_rewards.static
        uncle_paid = result.pool_rewards.uncle + result.honest_rewards.uncle
        assert static_paid == pytest.approx(result.regular_blocks)
        assert uncle_paid <= fraction * result.uncle_blocks + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(alpha=alphas, gamma=gammas, seed=seeds)
    def test_relative_revenue_is_a_probability(self, alpha, gamma, seed):
        result = ChainSimulator(chain_config(alpha, gamma, seed)).run()
        assert 0.0 <= result.relative_pool_revenue <= 1.0

    @settings(max_examples=15, deadline=None)
    @given(alpha=st.floats(min_value=0.05, max_value=0.45), gamma=gammas, seed=seeds)
    def test_scenario2_revenue_never_exceeds_scenario1(self, alpha, gamma, seed):
        result = ChainSimulator(chain_config(alpha, gamma, seed)).run()
        assert result.pool_absolute_revenue(Scenario.REGULAR_PLUS_UNCLE) <= result.pool_absolute_revenue(
            Scenario.REGULAR_ONLY
        ) + 1e-12

    @settings(max_examples=15, deadline=None)
    @given(alpha=alphas, gamma=gammas, seed=seeds)
    def test_determinism(self, alpha, gamma, seed):
        first = ChainSimulator(chain_config(alpha, gamma, seed, blocks=300)).run()
        second = ChainSimulator(chain_config(alpha, gamma, seed, blocks=300)).run()
        assert first.pool_rewards.isclose(second.pool_rewards)
        assert first.honest_rewards.isclose(second.honest_rewards)


class TestMonteCarloProperties:
    @settings(max_examples=25, deadline=None)
    @given(alpha=alphas, gamma=gammas, seed=seeds)
    def test_block_conservation(self, alpha, gamma, seed):
        result = MarkovMonteCarlo(chain_config(alpha, gamma, seed, blocks=2000)).run()
        assert result.regular_blocks + result.uncle_blocks + result.stale_blocks == pytest.approx(
            result.total_blocks, abs=1e-6
        )

    @settings(max_examples=25, deadline=None)
    @given(alpha=alphas, gamma=gammas, seed=seeds)
    def test_static_rewards_equal_regular_blocks(self, alpha, gamma, seed):
        result = MarkovMonteCarlo(chain_config(alpha, gamma, seed, blocks=2000)).run()
        static_paid = result.pool_rewards.static + result.honest_rewards.static
        assert static_paid == pytest.approx(result.regular_blocks, abs=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(alpha=alphas, gamma=gammas, seed=seeds)
    def test_pool_rewards_never_negative(self, alpha, gamma, seed):
        result = MarkovMonteCarlo(chain_config(alpha, gamma, seed, blocks=1000)).run()
        assert result.pool_rewards.total >= 0.0
        assert result.honest_rewards.total >= 0.0
