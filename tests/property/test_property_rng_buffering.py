"""Property-based tests pinning the buffered random source to the scalar stream.

The chunked :class:`~repro.simulation.rng.RandomSource` claims to reproduce the
*exact* draw sequence of the unbuffered implementation (one numpy Generator call per
draw) for any interleaving of draw kinds, any chunk size, and across spawned
children.  These tests drive randomly generated mixed call patterns through a
buffered source, an unbuffered source, and a plain :class:`numpy.random.Generator`
(the ground truth the unbuffered mode delegates to) and require all three to agree
value for value.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.rng import RandomSource

seeds = st.integers(min_value=0, max_value=2**63 - 1)
buffer_sizes = st.sampled_from([2, 3, 5, 17, 64, 1024])

#: One random decision: the kind plus its parameter.  The integer bounds cross the
#: 32-bit/64-bit Lemire paths and their edge cases (bound 1 consumes no randomness,
#: bounds near and beyond 2**32 switch algorithms, small bounds stress the carried
#: half-word).
calls = st.one_of(
    st.tuples(st.just("uniform"), st.just(0)),
    st.tuples(st.just("pool"), st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
    st.tuples(st.just("gamma"), st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
    st.tuples(st.just("miner"), st.integers(min_value=1, max_value=10_000)),
    st.tuples(
        st.just("miner"),
        st.sampled_from([1, 2, 6, 999, 2**31 + 7, 2**32 - 1, 2**32, 2**32 + 5, 2**40]),
    ),
    st.tuples(st.just("choice"), st.integers(min_value=1, max_value=64)),
    st.tuples(st.just("block"), st.integers(min_value=0, max_value=40)),
)


def perform(source: RandomSource, call: tuple) -> object:
    kind, value = call
    if kind == "uniform":
        return source.uniform()
    if kind == "pool":
        return source.pool_mines_next(value)
    if kind == "gamma":
        return source.honest_mines_on_pool_branch(value)
    if kind == "miner":
        return source.honest_miner_index(value)
    if kind == "choice":
        return source.choice_index(value)
    return tuple(source.uniform_block(value))


def reference(generator: np.random.Generator, call: tuple) -> object:
    kind, value = call
    if kind == "uniform":
        return float(generator.random())
    if kind == "pool" or kind == "gamma":
        return bool(generator.random() < value)
    if kind == "miner" or kind == "choice":
        return int(generator.integers(0, value))
    return tuple(float(generator.random()) for _ in range(value))


class TestBufferedStreamEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(seed=seeds, buffer_size=buffer_sizes, pattern=st.lists(calls, min_size=1, max_size=120))
    def test_mixed_patterns_match_unbuffered_and_numpy(self, seed, buffer_size, pattern):
        buffered = RandomSource(seed, buffer_size=buffer_size)
        unbuffered = RandomSource(seed, buffer_size=1)
        generator = np.random.Generator(np.random.PCG64(seed))
        for call in pattern:
            value = perform(buffered, call)
            assert value == perform(unbuffered, call), call
            assert value == reference(generator, call), call

    @settings(max_examples=25, deadline=None)
    @given(
        seed=seeds,
        buffer_size=buffer_sizes,
        pattern=st.lists(calls, min_size=1, max_size=60),
        child_index=st.integers(min_value=0, max_value=5),
    )
    def test_spawned_children_preserve_equivalence(self, seed, buffer_size, pattern, child_index):
        buffered_child = RandomSource(seed, buffer_size=buffer_size).spawn(child_index)
        unbuffered_child = RandomSource(seed, buffer_size=1).spawn(child_index)
        assert buffered_child.seed == unbuffered_child.seed
        assert buffered_child.buffer_size == buffer_size
        for call in pattern:
            assert perform(buffered_child, call) == perform(unbuffered_child, call), call

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, buffer_size=buffer_sizes, counts=st.lists(st.integers(0, 50), max_size=12))
    def test_uniform_blocks_are_the_uniform_sequence(self, seed, buffer_size, counts):
        blocked = RandomSource(seed, buffer_size=buffer_size)
        scalar = RandomSource(seed, buffer_size=buffer_size)
        drawn: list[float] = []
        for count in counts:
            drawn.extend(blocked.uniform_block(count))
        assert drawn == [scalar.uniform() for _ in range(len(drawn))]

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds, buffer_size=buffer_sizes)
    def test_interleaved_blocks_and_integers(self, seed, buffer_size):
        """Bulk draws larger than the buffer must not desynchronise bounded draws."""
        source = RandomSource(seed, buffer_size=buffer_size)
        generator = np.random.Generator(np.random.PCG64(seed))
        assert source.uniform_block(3) == [float(generator.random()) for _ in range(3)]
        assert source.honest_miner_index(999) == int(generator.integers(0, 999))
        big = 4 * buffer_size + 7
        assert source.uniform_block(big) == [float(generator.random()) for _ in range(big)]
        assert source.choice_index(7) == int(generator.integers(0, 7))
        assert source.uniform() == float(generator.random())
