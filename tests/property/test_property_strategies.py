"""Property-based tests for the strategy layer.

For random parameter points, seeds and strategies the engine must uphold its
accounting and bookkeeping invariants: every mined block is classified exactly
once (reward conservation), :meth:`RaceState.check_invariants` never fires (it is
exercised after every step by the engine itself), and the rendered tree stays
structurally valid.  The selfish strategy additionally must agree with the
analytical relative-revenue prediction in distribution, but that is covered by the
integration suite; here the focus is on universally quantified safety properties.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chain.validation import validate_tree
from repro.params import MiningParams
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import ChainSimulator
from repro.strategies import Action, available_strategies, make_strategy

# The stateless catalogue strategies: "optimal" is excluded because it is
# configuration-aware (one MDP solve per distinct random parameter point would
# dominate the suite); its engine invariants are covered with directly
# constructed policy tables in tests/property/test_property_mdp.py.
STRATEGY_NAMES = sorted(name for name in available_strategies() if name != "optimal")

simulation_cases = st.fixed_dictionaries(
    {
        "alpha": st.floats(min_value=0.0, max_value=0.49, allow_nan=False),
        "gamma": st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        "seed": st.integers(min_value=0, max_value=2**32 - 1),
        "strategy": st.sampled_from(STRATEGY_NAMES),
        "blocks": st.integers(min_value=50, max_value=400),
    }
)

race_views = st.builds(
    lambda private, published_cut, public: _View(
        private, min(published_cut, private, public), public
    ),
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=0, max_value=8),
)


class _View:
    """Minimal RaceView stand-in for decision-totality checks."""

    def __init__(self, private: int, published: int, public: int) -> None:
        self._private = private
        self.published_count = published
        self._public = public

    @property
    def private_length(self) -> int:
        return self._private

    @property
    def public_length(self) -> int:
        return self._public


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(case=simulation_cases)
def test_reward_conservation_and_invariants(case):
    """Runs complete, invariants hold at every step, and block accounting closes."""
    config = SimulationConfig(
        params=MiningParams(alpha=case["alpha"], gamma=case["gamma"]),
        num_blocks=case["blocks"],
        seed=case["seed"],
        strategy=case["strategy"],
        validate_chain=True,
    )
    simulator = ChainSimulator(config)
    result = simulator.run()
    # Every mined block is classified exactly once.
    assert (
        result.regular_blocks + result.uncle_blocks + result.stale_blocks
        == result.total_blocks
        == config.num_blocks
    )
    assert result.pool_regular_blocks + result.honest_regular_blocks == result.regular_blocks
    assert result.pool_uncle_blocks + result.honest_uncle_blocks == result.uncle_blocks
    # Relative revenue is a share.
    assert 0.0 <= result.relative_pool_revenue <= 1.0
    # Rewards are non-negative per party and type.
    for party in (result.pool_rewards, result.honest_rewards):
        assert party.static >= 0.0 and party.uncle >= 0.0 and party.nephew >= 0.0
    # The finished tree is structurally valid (finalise published all blocks).
    validate_tree(simulator.tree)


@settings(max_examples=40, deadline=None)
@given(case=simulation_cases)
def test_honest_strategy_produces_a_clean_chain(case):
    """An honest pool never forks: no stale blocks, no uncles, whatever the seed."""
    config = SimulationConfig(
        params=MiningParams(alpha=case["alpha"], gamma=case["gamma"]),
        num_blocks=case["blocks"],
        seed=case["seed"],
        strategy="honest",
    )
    result = ChainSimulator(config).run()
    assert result.stale_blocks == 0.0
    assert result.uncle_blocks == 0.0
    assert result.regular_blocks == result.total_blocks


@settings(max_examples=100, deadline=None)
@given(view=race_views, name=st.sampled_from(STRATEGY_NAMES))
def test_decisions_are_total_and_deterministic(view, name):
    """Every strategy answers every conceivable view with a valid, stable action."""
    strategy = make_strategy(name)
    for method in (strategy.after_pool_block, strategy.after_honest_block):
        action = method(view)
        assert isinstance(action, Action)
        assert method(view) is action


@settings(max_examples=30, deadline=None)
@given(
    alpha=st.floats(min_value=0.05, max_value=0.45),
    gamma=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_selfish_matches_deprecated_flag_spelling(alpha, gamma, seed):
    """``strategy="selfish"`` and the legacy ``selfish=True`` are the same run (which warns)."""
    params = MiningParams(alpha=alpha, gamma=gamma)
    with pytest.warns(DeprecationWarning, match="'selfish' flag"):
        legacy_config = SimulationConfig(params=params, num_blocks=150, seed=seed, selfish=True)
    legacy = ChainSimulator(legacy_config).run()
    explicit = ChainSimulator(
        SimulationConfig(params=params, num_blocks=150, seed=seed, strategy="selfish")
    ).run()
    assert legacy.pool_rewards == explicit.pool_rewards
    assert legacy.honest_rewards == explicit.honest_rewards
    assert legacy.regular_blocks == explicit.regular_blocks
    assert legacy.uncle_blocks == explicit.uncle_blocks
    assert legacy.stale_blocks == explicit.stale_blocks
