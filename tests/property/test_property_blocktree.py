"""Property-based tests for the block-tree substrate.

The strategy builds random but *protocol-consistent* trees: every generated action
either extends a random existing block or forks off one, and uncle references are only
attached when :func:`repro.chain.uncles.eligible_uncles` allows them — exactly how the
simulator composes blocks.  The resulting trees must always satisfy the structural
validator and a set of derived invariants.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import GENESIS_ID, MinerKind
from repro.chain.blocktree import BlockTree
from repro.chain.fork_choice import LongestChainRule
from repro.chain.rewards import settle_rewards
from repro.chain.uncles import eligible_uncles
from repro.chain.validation import validate_tree
from repro.rewards.schedule import EthereumByzantiumSchedule

SCHEDULE = EthereumByzantiumSchedule()

# Each action is (parent_choice, miner_is_pool, try_reference_uncles).
actions = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10**6), st.booleans(), st.booleans()),
    min_size=1,
    max_size=40,
)


def build_tree(action_list) -> BlockTree:
    tree = BlockTree()
    for step, (parent_choice, is_pool, reference) in enumerate(action_list):
        blocks = tree.blocks()
        parent = blocks[parent_choice % len(blocks)]
        uncle_ids: list[int] = []
        if reference:
            window = tree.blocks_in_height_range(parent.height - 5, parent.height)
            uncle_ids = [
                block.block_id for block in eligible_uncles(tree, parent.block_id, window)[:2]
            ]
        tree.add_block(
            parent.block_id,
            MinerKind.POOL if is_pool else MinerKind.HONEST,
            created_at=step,
            uncle_ids=uncle_ids,
        )
    return tree


class TestTreeInvariants:
    @settings(max_examples=60, deadline=None)
    @given(action_list=actions)
    def test_generated_trees_always_validate(self, action_list):
        tree = build_tree(action_list)
        validate_tree(tree)

    @settings(max_examples=60, deadline=None)
    @given(action_list=actions)
    def test_heights_equal_path_lengths(self, action_list):
        tree = build_tree(action_list)
        for block in tree.blocks():
            assert block.height == len(tree.chain_to(block.block_id)) - 1

    @settings(max_examples=60, deadline=None)
    @given(action_list=actions)
    def test_every_non_genesis_block_descends_from_genesis(self, action_list):
        tree = build_tree(action_list)
        for block in tree.blocks():
            if not block.is_genesis:
                assert tree.is_ancestor(GENESIS_ID, block.block_id)

    @settings(max_examples=60, deadline=None)
    @given(action_list=actions)
    def test_best_tip_has_maximum_height(self, action_list):
        tree = build_tree(action_list)
        tip = LongestChainRule().best_tip(tree)
        assert tip.height == tree.max_height()

    @settings(max_examples=60, deadline=None)
    @given(action_list=actions)
    def test_children_and_parents_are_mutually_consistent(self, action_list):
        tree = build_tree(action_list)
        for block in tree.blocks():
            for child in tree.children(block.block_id):
                assert child.parent_id == block.block_id


class TestSettlementInvariants:
    @settings(max_examples=60, deadline=None)
    @given(action_list=actions)
    def test_every_block_is_classified_exactly_once(self, action_list):
        tree = build_tree(action_list)
        tip = LongestChainRule().best_tip(tree)
        settlement = settle_rewards(tree, tip.block_id, SCHEDULE)
        assert settlement.blocks_accounted() == settlement.total_blocks == len(tree) - 1

    @settings(max_examples=60, deadline=None)
    @given(action_list=actions)
    def test_static_rewards_equal_main_chain_length(self, action_list):
        tree = build_tree(action_list)
        tip = LongestChainRule().best_tip(tree)
        settlement = settle_rewards(tree, tip.block_id, SCHEDULE)
        assert settlement.split.total_static == pytest.approx(float(settlement.regular_blocks))

    @settings(max_examples=60, deadline=None)
    @given(action_list=actions)
    def test_total_rewards_are_bounded(self, action_list):
        # Every block can earn at most one static reward, one uncle reward (< 1) and
        # two nephew rewards (2/32), so the grand total is below 2x the block count.
        tree = build_tree(action_list)
        tip = LongestChainRule().best_tip(tree)
        settlement = settle_rewards(tree, tip.block_id, SCHEDULE)
        assert settlement.split.total <= 2.0 * settlement.total_blocks

    @settings(max_examples=60, deadline=None)
    @given(action_list=actions)
    def test_uncle_counts_match_distance_histograms(self, action_list):
        tree = build_tree(action_list)
        tip = LongestChainRule().best_tip(tree)
        settlement = settle_rewards(tree, tip.block_id, SCHEDULE)
        assert sum(settlement.honest_uncle_distance_counts.values()) == settlement.honest_uncle_blocks
        assert sum(settlement.pool_uncle_distance_counts.values()) == settlement.pool_uncle_blocks
