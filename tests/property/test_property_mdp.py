"""Property-based tests for the optimal-strategy MDP subsystem.

Three families of universally quantified facts:

* **Solver optimality** — the solved share dominates every policy the MDP's
  family contains, in particular the analytically evaluable catalogue corners
  (Algorithm 1 via :class:`~repro.analysis.revenue.RevenueModel`, honest mining's
  ``revenue = alpha``), for random ``(alpha, gamma)`` points.
* **Policy-improvement monotonicity** — the Dinkelbach share sequence never
  decreases, and pinning the policy to Algorithm 1 reproduces the
  :class:`~repro.markov.chain.MarkovChain` stationary revenue exactly: the MDP is
  a strict generalisation of the paper's chain, not a parallel implementation.
* **Engine safety of arbitrary tables** — an :class:`OptimalStrategy` built from
  a *random* withhold/override table (not just solved ones) keeps every chain
  simulator invariant: the accounting closes, the tree validates, and overrides
  are always protocol-valid (the published branch is strictly longest).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import pytest

from repro.analysis.revenue import RevenueModel
from repro.chain.validation import validate_tree
from repro.markov.state import State, StateSpace
from repro.mdp.solver import MdpSolver
from repro.params import MiningParams
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import ChainSimulator
from repro.strategies import OptimalStrategy

#: Truncation used by the random-point solves: small enough that one solve costs
#: milliseconds, and every analytical comparison uses the *same* truncation so
#: the dominance facts are exact rather than tolerance-smeared.
MAX_LEAD = 12

#: Codes eligible for random policy tables (states of a small space), always
#: joined with the forced tie-break code.
TABLE_CODES = sorted(state.encode() for state in StateSpace(8))
TIE_CODE = State(1, 1).encode()

parameter_points = st.tuples(
    st.floats(min_value=0.0, max_value=0.45, allow_nan=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(point=parameter_points)
def test_optimal_share_dominates_the_evaluable_catalogue(point):
    """Optimal >= Algorithm 1 and >= honest everywhere (both are corner policies)."""
    alpha, gamma = point
    params = MiningParams(alpha=alpha, gamma=gamma)
    solver = MdpSolver(params, max_lead=MAX_LEAD)
    result = solver.solve()
    selfish = solver.evaluate(solver.model.selfish_policy()).share
    honest = solver.evaluate(solver.model.honest_policy()).share
    assert result.optimal_share >= selfish - 1e-12
    assert result.optimal_share >= honest - 1e-12
    assert result.optimal_share == pytest.approx(max(result.shares), abs=1e-15)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(point=parameter_points)
def test_policy_improvement_is_monotone(point):
    """The Dinkelbach share sequence is non-decreasing (strictly until optimal)."""
    alpha, gamma = point
    result = MdpSolver(MiningParams(alpha=alpha, gamma=gamma), max_lead=MAX_LEAD).solve()
    for earlier, later in zip(result.shares, result.shares[1:]):
        assert later > earlier  # each improvement round strictly raises the share


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(point=parameter_points)
def test_selfish_pinned_value_matches_the_markov_chain_revenue(point):
    """Pinning the policy to Algorithm 1 reproduces the stationary-chain revenue."""
    alpha, gamma = point
    params = MiningParams(alpha=alpha, gamma=gamma)
    solver = MdpSolver(params, max_lead=MAX_LEAD)
    pinned = solver.evaluate(solver.model.selfish_policy())
    expected = RevenueModel(max_lead=MAX_LEAD).revenue_rates(params)
    if alpha == 0.0:
        assert pinned.share == pytest.approx(0.0, abs=1e-15)
    else:
        assert pinned.share == pytest.approx(expected.relative_pool_revenue, abs=1e-10)
    assert pinned.rates.regular_rate == pytest.approx(expected.regular_rate, abs=1e-10)
    assert pinned.rates.stale_rate == pytest.approx(expected.stale_rate, abs=1e-10)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    alpha=st.floats(min_value=0.05, max_value=0.45, allow_nan=False),
    gamma=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    blocks=st.integers(min_value=60, max_value=300),
    extra_codes=st.sets(st.sampled_from(TABLE_CODES), max_size=6),
)
def test_random_policy_tables_uphold_the_engine_invariants(
    alpha, gamma, seed, blocks, extra_codes
):
    """Any withhold/override table runs safely through the full chain simulator."""
    table = tuple(sorted(extra_codes | {TIE_CODE}))
    strategy = OptimalStrategy(override_codes=table)
    config = SimulationConfig(
        params=MiningParams(alpha=alpha, gamma=gamma),
        num_blocks=blocks,
        seed=seed,
        validate_chain=True,
    )
    simulator = ChainSimulator(config, strategy=strategy)
    result = simulator.run()
    assert (
        result.regular_blocks + result.uncle_blocks + result.stale_blocks
        == result.total_blocks
        == blocks
    )
    assert result.pool_regular_blocks + result.honest_regular_blocks == result.regular_blocks
    assert 0.0 <= result.relative_pool_revenue <= 1.0
    validate_tree(simulator.tree)
