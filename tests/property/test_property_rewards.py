"""Property-based tests for reward schedules and reward containers."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rewards.breakdown import PartyRewards, RevenueSplit
from repro.rewards.schedule import CustomSchedule, EthereumByzantiumSchedule, FlatUncleSchedule

finite_rewards = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
party_rewards = st.builds(PartyRewards, static=finite_rewards, uncle=finite_rewards, nephew=finite_rewards)
distances = st.integers(min_value=0, max_value=20)
fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestScheduleProperties:
    @given(distance=distances)
    def test_ethereum_uncle_reward_is_bounded_by_seven_eighths(self, distance):
        reward = EthereumByzantiumSchedule().uncle_reward(distance)
        assert 0.0 <= reward <= 7 / 8

    @given(distance=st.integers(min_value=1, max_value=5))
    def test_ethereum_uncle_reward_strictly_decreases_inside_the_window(self, distance):
        schedule = EthereumByzantiumSchedule()
        assert schedule.uncle_reward(distance) > schedule.uncle_reward(distance + 1)

    @given(distance=distances, fraction=fractions)
    def test_flat_schedule_never_exceeds_its_fraction(self, distance, fraction):
        schedule = FlatUncleSchedule(fraction)
        assert 0.0 <= schedule.uncle_reward(distance) <= fraction

    @given(distance=distances)
    def test_includable_distances_are_exactly_those_with_possible_rewards(self, distance):
        schedule = EthereumByzantiumSchedule()
        if schedule.includable(distance):
            assert 1 <= distance <= schedule.max_uncle_distance
        else:
            assert schedule.uncle_reward(distance) == 0.0
            assert schedule.nephew_reward(distance) == 0.0

    @given(distance=st.integers(min_value=1, max_value=6), scale=st.floats(min_value=0.1, max_value=10.0))
    def test_rewards_scale_linearly_with_the_static_reward(self, distance, scale):
        base = EthereumByzantiumSchedule()
        scaled = EthereumByzantiumSchedule(static_reward=scale)
        assert scaled.uncle_reward(distance) == base.uncle_reward(distance) * scale
        assert scaled.nephew_reward(distance) == base.nephew_reward(distance) * scale

    @given(distance=distances)
    def test_custom_schedule_respects_its_window(self, distance):
        schedule = CustomSchedule(uncle_fn=lambda d: 0.5, nephew_fn=lambda d: 0.1, max_uncle_distance=4)
        if distance < 1 or distance > 4:
            assert schedule.uncle_reward(distance) == 0.0


class TestPartyRewardsProperties:
    @given(first=party_rewards, second=party_rewards)
    def test_addition_is_commutative(self, first, second):
        assert (first + second).isclose(second + first)

    @given(first=party_rewards, second=party_rewards, third=party_rewards)
    def test_addition_is_associative(self, first, second, third):
        left = (first + second) + third
        right = first + (second + third)
        assert left.isclose(right, rel_tol=1e-9, abs_tol=1e-6)

    @given(rewards=party_rewards, factor=st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    def test_scaling_scales_the_total(self, rewards, factor):
        scaled = rewards.scaled(factor)
        assert scaled.total <= rewards.total * factor + 1e-6
        assert abs(scaled.total - rewards.total * factor) < 1e-6 * max(1.0, rewards.total)

    @given(rewards=party_rewards)
    def test_total_is_sum_of_components(self, rewards):
        assert rewards.total == rewards.static + rewards.uncle + rewards.nephew

    @given(pool=party_rewards, honest=party_rewards)
    def test_pool_share_is_a_probability(self, pool, honest):
        split = RevenueSplit(pool=pool, honest=honest)
        assert 0.0 <= split.pool_share() <= 1.0

    @settings(max_examples=25)
    @given(pool=party_rewards, honest=party_rewards, factor=st.floats(min_value=0.1, max_value=10.0))
    def test_scaling_a_split_preserves_the_share(self, pool, honest, factor):
        split = RevenueSplit(pool=pool, honest=honest)
        scaled = split.scaled(factor)
        if split.total > 0:
            assert scaled.pool_share() == split.pool_share() or abs(
                scaled.pool_share() - split.pool_share()
            ) < 1e-9
