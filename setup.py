"""Setuptools shim.

The project metadata lives in ``pyproject.toml``.  This file exists so that the
package can be installed in editable mode (``pip install -e .``) on machines without
network access, where pip's PEP 517 editable path cannot fetch the ``wheel`` build
backend: with a ``setup.py`` present pip falls back to the legacy
``setup.py develop`` route, which only needs setuptools.
"""

from setuptools import setup

setup()
