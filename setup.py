"""Package metadata and installation.

Metadata is declared directly in ``setup.py`` (rather than ``pyproject.toml``) so
that the package installs in editable mode (``pip install -e .``) on machines
without network access: pip's PEP 517 editable path needs to fetch the ``wheel``
build backend, while the legacy ``setup.py develop`` route only needs the
setuptools already baked into the environment.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_here = Path(__file__).parent
_readme = _here / "README.md"
# Single-source the version from the package itself.
_version = re.search(
    r'^__version__ = "([^"]+)"',
    (_here / "src" / "repro" / "__init__.py").read_text(encoding="utf-8"),
    re.MULTILINE,
).group(1)

setup(
    name="repro-selfish-mining-ethereum",
    version=_version,
    description=(
        "Reproduction of 'Selfish Mining in Ethereum' (Niu & Feng, ICDCS 2019): "
        "analytical Markov model, discrete-event simulator, pluggable mining strategies"
    ),
    long_description=_readme.read_text(encoding="utf-8") if _readme.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "License :: OSI Approved :: MIT License",
        "Intended Audience :: Science/Research",
        "Topic :: Scientific/Engineering",
    ],
)
