"""Benchmark + reproduction of Figure 10 (profitability thresholds vs gamma).

Regenerates the three threshold curves — Bitcoin (Eyal-Sirer), Ethereum scenario 1 and
Ethereum scenario 2 — over the paper's gamma axis and pins the figure's shape: all
curves fall with gamma and vanish at gamma = 1, scenario 1 sits below Bitcoin
everywhere, and scenario 2 crosses above Bitcoin near gamma ~ 0.39.
"""

from __future__ import annotations

from report_utils import emit_report

from repro.experiments.figure10 import run_figure10
from repro.utils.grids import inclusive_range


def test_figure10_reproduction(benchmark):
    result = benchmark.pedantic(
        run_figure10,
        kwargs={"gammas": inclusive_range(0.0, 1.0, 0.1), "max_lead": 40},
        rounds=1,
        iterations=1,
    )
    emit_report("Figure 10: profitability threshold alpha* vs gamma", result.report())

    bitcoin = result.bitcoin_thresholds()
    scenario1 = result.scenario1_thresholds()
    scenario2 = result.scenario2_thresholds()

    # Every curve decreases with gamma and collapses to zero at gamma = 1.
    for series in (bitcoin, scenario1, scenario2):
        assert all(later <= earlier + 1e-6 for earlier, later in zip(series, series[1:]))
        assert series[-1] < 0.01

    # Scenario 1 is easier to attack than Bitcoin for every gamma.
    assert all(s1 <= btc + 1e-6 for s1, btc in zip(scenario1, bitcoin))

    # Scenario 2 crosses above Bitcoin between gamma = 0.3 and gamma = 0.5.
    crossover = result.scenario2_crossover_gamma()
    assert crossover is not None
    assert 0.3 <= crossover <= 0.5

    # Known endpoints: Bitcoin starts at 1/3, Ethereum scenario 1 near 0.09-0.11 at gamma=0.
    assert abs(bitcoin[0] - 1 / 3) < 1e-9
    assert scenario1[0] < 0.15
