"""Benchmarks of the resilient dispatcher against the bare pool it replaced.

PR 7 swapped every ``pool.map`` for the submit-based resilient dispatcher
(per-task futures, wall-clock timeouts, deterministic retries, crash
recovery).  That machinery must be effectively free when nothing fails: these
benchmarks time the dispatcher's pool path against a bare
``ProcessPoolExecutor.map`` replica of the pre-PR 7 dispatch on the same
workload, and the dispatcher's serial path against a plain Python loop.  The
run driver pairs the records into ``overhead_vs_pool_map`` and
``overhead_vs_serial_loop`` ratios in the output JSON — the dispatcher's
fault-tolerance tax.

The workload is real simulation (the fast ``markov`` backend), sized so the
dispatch machinery is a visible fraction of the total rather than noise.
Sizes honour ``REPRO_BENCH_SCALE`` exactly like ``bench_engines.py``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.params import MiningParams
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_once
from repro.utils.resilient import RetryPolicy, resilient_map

#: Scale multiplier for the simulated block counts (CI smoke runs use < 1).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: How many independent runs each dispatch pushes through the pool.
NUM_TASKS = 8

#: The benchmark measures dispatch, not recovery: nothing fails, so retries
#: and backoff never engage, exactly like a healthy production sweep.
POLICY = RetryPolicy(retries=0)


def scaled(blocks: int) -> int:
    """``blocks`` scaled by ``REPRO_BENCH_SCALE`` (at least 1000)."""
    return max(1000, int(blocks * BENCH_SCALE))


def _tasks(blocks: int) -> list[SimulationConfig]:
    return [
        SimulationConfig(
            params=MiningParams(alpha=round(0.05 * (index + 1), 2), gamma=0.5),
            num_blocks=blocks,
            seed=2019 + index,
            strategy="selfish",
        )
        for index in range(NUM_TASKS)
    ]


def _simulate(config: SimulationConfig) -> float:
    return run_once(config, backend="markov").relative_pool_revenue


def test_resilient_pool_dispatch_benchmark(benchmark):
    """The resilient dispatcher's pool path on a fault-free workload."""
    blocks = scaled(20_000)
    tasks = _tasks(blocks)
    benchmark.extra_info["blocks"] = blocks * NUM_TASKS
    result = benchmark.pedantic(
        lambda: resilient_map(_simulate, tasks, max_workers=2, policy=POLICY),
        rounds=3,
        iterations=1,
    )
    # Dispatch order must not leak into results: input order, bit-identical.
    assert result == [_simulate(config) for config in tasks]


def test_legacy_pool_map_benchmark(benchmark):
    """The pre-PR 7 dispatch: a bare ``ProcessPoolExecutor.map``."""
    blocks = scaled(20_000)
    tasks = _tasks(blocks)
    benchmark.extra_info["blocks"] = blocks * NUM_TASKS

    def legacy_dispatch():
        with ProcessPoolExecutor(max_workers=2) as pool:
            return list(pool.map(_simulate, tasks))

    result = benchmark.pedantic(legacy_dispatch, rounds=3, iterations=1)
    assert len(result) == NUM_TASKS


def test_resilient_serial_dispatch_benchmark(benchmark):
    """The dispatcher's in-process path (``max_workers=1``, no timeout)."""
    blocks = scaled(20_000)
    tasks = _tasks(blocks)
    benchmark.extra_info["blocks"] = blocks * NUM_TASKS
    result = benchmark.pedantic(
        lambda: resilient_map(_simulate, tasks, policy=POLICY),
        rounds=3,
        iterations=1,
    )
    assert len(result) == NUM_TASKS


def test_serial_loop_baseline_benchmark(benchmark):
    """A plain Python loop over the same workload (no dispatcher at all)."""
    blocks = scaled(20_000)
    tasks = _tasks(blocks)
    benchmark.extra_info["blocks"] = blocks * NUM_TASKS
    result = benchmark.pedantic(
        lambda: [_simulate(config) for config in tasks],
        rounds=3,
        iterations=1,
    )
    assert len(result) == NUM_TASKS
