"""Benchmarks of the sweep engine and the persistent result store.

Two things matter about the store: a *cold* sweep must not pay noticeably for
writing its results (the store tax is a few JSON dumps against seconds of
simulation), and a *warm* sweep must collapse to pure reads — zero simulation
work, milliseconds of wall clock.  Both are measured over the same
figure-8-shaped scenario (one strategy, an alpha grid, the fast ``markov``
backend so the cache machinery, not the engine, dominates the warm number).

Sizes honour ``REPRO_BENCH_SCALE`` exactly like ``bench_engines.py``.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro.scenarios import ScenarioSpec, run_scenario
from repro.store import ResultStore

#: Scale multiplier for the simulated block counts (CI smoke runs use < 1).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(blocks: int) -> int:
    """``blocks`` scaled by ``REPRO_BENCH_SCALE`` (at least 1000)."""
    return max(1000, int(blocks * BENCH_SCALE))


def _figure8_sized_spec(blocks: int) -> ScenarioSpec:
    return ScenarioSpec(
        name="bench-sweep",
        alphas=tuple(round(0.05 * step, 2) for step in range(1, 10)),
        gammas=(0.5,),
        strategies=("selfish",),
        backends=("markov",),
        num_runs=2,
        num_blocks=blocks,
        seed=2019,
    )


def test_sweep_cold_cache_benchmark(benchmark):
    """Cold sweep: every cell simulated, every result persisted."""
    blocks = scaled(20_000)
    spec = _figure8_sized_spec(blocks)
    benchmark.extra_info["blocks"] = blocks * spec.num_planned_runs
    root = tempfile.mkdtemp(prefix="bench-sweep-cold-")

    counter = iter(range(10**6))

    def cold_run():
        result = run_scenario(spec, store=ResultStore(f"{root}/{next(counter)}"))
        assert result.executed_runs == spec.num_planned_runs
        return result

    try:
        benchmark.pedantic(cold_run, rounds=1, iterations=1)
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_sweep_warm_cache_benchmark(benchmark):
    """Warm sweep: the same scenario answered entirely from the store."""
    blocks = scaled(20_000)
    spec = _figure8_sized_spec(blocks)
    benchmark.extra_info["blocks"] = blocks * spec.num_planned_runs
    root = tempfile.mkdtemp(prefix="bench-sweep-warm-")
    store = ResultStore(root)
    run_scenario(spec, store=store)  # populate

    def warm_run():
        result = run_scenario(spec, store=store)
        assert result.executed_runs == 0
        return result

    try:
        benchmark.pedantic(warm_run, rounds=3, iterations=1)
    finally:
        shutil.rmtree(root, ignore_errors=True)
