"""Benchmarks of the result store's read tiers: loose JSON vs pack files.

ROADMAP item 1's complaint is concrete — one JSON file per settled run means a
warm million-cell sweep pays one ``open()`` + parse + checksum per cell.  The
pack tier (:mod:`repro.store.packs`) batches every settled entry of a shard
into one sqlite file, so the same warm read costs one ``SELECT`` per shard
over a cached connection.  These benchmarks measure exactly that trade on the
same synthetic entry set:

* ``loose_read``: ``get_many`` over a store that was never compacted — the
  per-file fallback path, one open per key;
* ``pack_read``: ``get_many`` over the identical entries after ``compact()`` —
  batched SELECTs, warm connections (a warmup round absorbs the per-pack
  ``sqlite3.connect``);
* ``compact``: what one compaction pass itself costs, amortised per entry.

Entry counts honour ``REPRO_BENCH_SCALE`` like the rest of the suite (10 000
entries at full scale — the acceptance bar for the pack tier's speedup — and
never fewer than 5 000: below that the per-shard SELECT's fixed cost is not
amortised over enough rows for the smoke-run ratio to be meaningful).
Throughput is reported through ``extra_info["entries"]`` as entries/s, the
store-tier equivalent of the simulator benchmarks' blocks/s.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile

from repro.store import SIMULATION_NAMESPACE, ResultStore

#: Scale multiplier for the entry counts (CI smoke runs use < 1).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled_entries(entries: int) -> int:
    """``entries`` scaled by ``REPRO_BENCH_SCALE`` (at least 5000)."""
    return max(5000, int(entries * BENCH_SCALE))


def _bench_key(index: int) -> str:
    return hashlib.sha256(f"bench-store-{index}".encode()).hexdigest()


def _bench_payload(index: int) -> dict:
    # Shaped like a small simulation payload: a few nested fields and floats,
    # so the checksum validation hashes a realistic amount of JSON.
    return {
        "kind": "simulation",
        "index": index,
        "rewards": {"static": 123.0 + index, "uncle": 0.875, "nephew": 0.03125},
        "blocks": {"regular": 9000 + index, "uncle": 600, "stale": 40},
        "counts": {str(distance): distance * 0.5 for distance in range(1, 7)},
    }


def _populated_store(root: str, num_entries: int) -> tuple[ResultStore, list[str]]:
    store = ResultStore(root)
    keys = [_bench_key(index) for index in range(num_entries)]
    for index, key in enumerate(keys):
        store.put(SIMULATION_NAMESPACE, key, _bench_payload(index))
    return store, keys


def test_store_loose_read_benchmark(benchmark):
    """Warm batched read over loose entries: one file open + parse per key."""
    num_entries = scaled_entries(10_000)
    benchmark.extra_info["entries"] = num_entries
    root = tempfile.mkdtemp(prefix="bench-store-loose-")
    store, keys = _populated_store(root, num_entries)

    def loose_read():
        found = store.get_many(SIMULATION_NAMESPACE, keys)
        assert len(found) == num_entries
        return found

    try:
        benchmark.pedantic(loose_read, rounds=3, iterations=1, warmup_rounds=1)
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_store_pack_read_benchmark(benchmark):
    """The same read after ``compact()``: one SELECT per shard, warm connections."""
    num_entries = scaled_entries(10_000)
    benchmark.extra_info["entries"] = num_entries
    root = tempfile.mkdtemp(prefix="bench-store-pack-")
    store, keys = _populated_store(root, num_entries)
    report = store.compact()
    assert report.packed == num_entries

    def pack_read():
        found = store.get_many(SIMULATION_NAMESPACE, keys)
        assert len(found) == num_entries
        return found

    try:
        benchmark.pedantic(pack_read, rounds=3, iterations=1, warmup_rounds=1)
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_store_compact_benchmark(benchmark):
    """One compaction pass over the full loose entry set (single round)."""
    num_entries = scaled_entries(10_000)
    benchmark.extra_info["entries"] = num_entries
    root = tempfile.mkdtemp(prefix="bench-store-compact-")
    store, _keys = _populated_store(root, num_entries)

    def compact():
        report = store.compact()
        assert report.packed == num_entries
        return report

    try:
        benchmark.pedantic(compact, rounds=1, iterations=1)
    finally:
        shutil.rmtree(root, ignore_errors=True)
