"""Benchmark + reproduction of Table II (honest uncle referencing distances).

Regenerates the distance distribution at ``alpha = 0.3`` and ``alpha = 0.45``
(``gamma = 0.5``) from the analytical model with a simulation overlay, and pins the
table's values and both expectation rows (1.75 and 2.72).
"""

from __future__ import annotations

import pytest
from report_utils import emit_report

from repro.experiments.table2 import run_table2

PAPER_ALPHA_030 = {1: 0.527, 2: 0.295, 3: 0.111, 4: 0.043, 5: 0.017, 6: 0.007}
PAPER_ALPHA_045 = {1: 0.284, 2: 0.249, 3: 0.171, 4: 0.125, 5: 0.096, 6: 0.075}


def test_table2_reproduction(benchmark):
    result = benchmark.pedantic(
        run_table2,
        kwargs={
            "include_simulation": True,
            "simulation_blocks": 30_000,
            "simulation_runs": 1,
            "max_lead": 60,
        },
        rounds=1,
        iterations=1,
    )
    emit_report("Table II: honest uncle referencing-distance distribution (gamma=0.5)", result.report())

    column_030, column_045 = result.columns
    for distance, expected in PAPER_ALPHA_030.items():
        assert column_030.analysis.probability(distance) == pytest.approx(expected, abs=0.005)
    for distance, expected in PAPER_ALPHA_045.items():
        assert column_045.analysis.probability(distance) == pytest.approx(expected, abs=0.005)

    assert column_030.analysis.expectation == pytest.approx(1.75, abs=0.01)
    assert column_045.analysis.expectation == pytest.approx(2.72, abs=0.01)

    # The simulated histogram tracks the analytical one.
    assert column_030.simulated is not None
    for distance, expected in PAPER_ALPHA_030.items():
        assert column_030.simulated.get(distance, 0.0) == pytest.approx(expected, abs=0.05)
