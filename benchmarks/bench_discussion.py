"""Benchmark + reproduction of the Section VI threshold comparison.

Regenerates the four profitability thresholds the paper quotes when replacing
Ethereum's distance-based uncle reward with a flat ``Ku = 4/8``:
0.054 -> 0.163 under scenario 1 and 0.270 -> 0.356 under scenario 2 (gamma = 0.5).
"""

from __future__ import annotations

import pytest
from report_utils import emit_report

from repro.experiments.discussion import run_discussion


def test_discussion_threshold_reproduction(benchmark):
    result = benchmark.pedantic(run_discussion, kwargs={"max_lead": 40}, rounds=1, iterations=1)
    emit_report("Section VI: thresholds under the current vs proposed uncle reward", result.report())

    assert result.current_scenario1.alpha_star == pytest.approx(0.054, abs=0.005)
    assert result.proposed_scenario1.alpha_star == pytest.approx(0.163, abs=0.005)
    assert result.current_scenario2.alpha_star == pytest.approx(0.270, abs=0.01)
    assert result.proposed_scenario2.alpha_star == pytest.approx(0.356, abs=0.01)

    # The proposal strictly raises both thresholds.
    assert result.improvement_scenario1() > 0.10
    assert result.improvement_scenario2() > 0.07
