"""Micro-benchmarks of the optimal-strategy MDP solver.

Tracks the cost of solving the withhold/override decision process at the two
truncation levels that matter in practice: the strategy default (``max_lead=60``,
what every ``strategy="optimal"`` simulation pays once per process and parameter
point) and the paper's full truncation (``max_lead=200``, the worst case the
``optimal`` experiment driver can be asked for).  The solve is run uncached
(:class:`~repro.mdp.solver.MdpSolver` directly) so the numbers measure model
compilation plus relative value iteration plus the exact Dinkelbach evaluations,
not the cache.

Sizes honour ``REPRO_BENCH_SCALE`` like the other benchmark files: the scale
multiplies the truncation level (floor 12), which smoke runs use to finish in
milliseconds.
"""

from __future__ import annotations

import os

from repro.mdp.solver import MdpSolver
from repro.params import MiningParams

#: A profitable parameter point, so the solve performs real improvement rounds.
PARAMS = MiningParams(alpha=0.4, gamma=0.5)

#: Scale multiplier for the truncation levels (CI smoke runs use < 1).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled_lead(max_lead: int) -> int:
    """``max_lead`` scaled by ``REPRO_BENCH_SCALE`` (at least 12)."""
    return max(12, int(max_lead * BENCH_SCALE))


def _solve(max_lead: int):
    solver = MdpSolver(PARAMS, max_lead=max_lead)
    return solver.solve()


def test_mdp_solve_default_truncation_benchmark(benchmark):
    """Full solve at the strategy default truncation (model build + RVI + evaluation)."""
    lead = scaled_lead(60)
    benchmark.extra_info["max_lead"] = lead
    result = benchmark.pedantic(_solve, args=(lead,), rounds=1, iterations=1)
    assert result.optimal_share >= PARAMS.alpha


def test_mdp_solve_paper_truncation_benchmark(benchmark):
    """Full solve at the paper's truncation level (the driver's worst case)."""
    lead = scaled_lead(200)
    benchmark.extra_info["max_lead"] = lead
    result = benchmark.pedantic(_solve, args=(lead,), rounds=1, iterations=1)
    assert result.optimal_share >= PARAMS.alpha


def test_mdp_improve_sweep_benchmark(benchmark):
    """One converged relative-value-iteration call at the default truncation.

    Separates the Bellman-sweep cost from model compilation, so regressions in
    the compiled tables and in the iteration itself are distinguishable.
    """
    lead = scaled_lead(60)
    benchmark.extra_info["max_lead"] = lead
    solver = MdpSolver(PARAMS, max_lead=lead)
    rho = float(PARAMS.alpha)
    policy, _, sweeps = benchmark.pedantic(
        lambda: solver.improve(rho), rounds=1, iterations=1
    )
    assert sweeps >= 1
    assert len(policy) == solver.model.num_states
