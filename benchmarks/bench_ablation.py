"""Ablation benchmarks: design choices called out in DESIGN.md.

Two ablations accompany the reproduction:

* **State-space truncation** — the analytical results must be insensitive to the
  truncation level well below the default; this ablation quantifies the residual at a
  heavy-tailed parameter point and times the solve at increasing depths.
* **Uncle-reward window** — the paper's flat-reward curves read best without the
  protocol's 6-generation inclusion window (see ``repro.experiments.figure9``); this
  ablation reports how much of Fig. 9's total-revenue inflation is attributable to
  far-away uncles.
"""

from __future__ import annotations

import pytest
from report_utils import emit_report

from repro.analysis.absolute import Scenario, absolute_revenue
from repro.analysis.revenue import RevenueModel
from repro.params import MiningParams
from repro.rewards.schedule import EthereumByzantiumSchedule, FlatUncleSchedule
from repro.utils.tables import Table

HEAVY_TAIL_POINT = MiningParams(alpha=0.45, gamma=0.5)


def _truncation_ablation() -> tuple[str, list[tuple[int, float]]]:
    rows: list[tuple[int, float]] = []
    for max_lead in (20, 30, 40, 60, 80):
        model = RevenueModel(EthereumByzantiumSchedule(), max_lead=max_lead)
        rows.append((max_lead, model.revenue_rates(HEAVY_TAIL_POINT).pool.total))
    table = Table(
        headers=["max_lead", "pool revenue rate"],
        title=f"Truncation ablation at {HEAVY_TAIL_POINT.describe()}",
        float_format=".8f",
    )
    for max_lead, value in rows:
        table.add_row(max_lead, value)
    return table.render(), rows


def test_truncation_ablation(benchmark):
    report, rows = benchmark.pedantic(_truncation_ablation, rounds=1, iterations=1)
    emit_report("Ablation: Markov state-space truncation", report)
    reference = rows[-1][1]
    errors = [abs(value - reference) for _, value in rows[:-1]]
    # Deeper truncations converge monotonically towards the reference value.
    assert all(later <= earlier + 1e-12 for earlier, later in zip(errors, errors[1:]))
    # And the default depth (60) is already within 1e-6 of the deepest evaluated.
    assert abs(rows[-2][1] - reference) < 1e-6


def _window_ablation() -> tuple[str, float, float]:
    windowed = RevenueModel(FlatUncleSchedule(7 / 8), max_lead=60)
    unlimited = RevenueModel(FlatUncleSchedule(7 / 8, max_uncle_distance=10**6), max_lead=60)
    point = MiningParams(alpha=0.45, gamma=0.5)
    total_windowed = absolute_revenue(windowed.revenue_rates(point), Scenario.REGULAR_ONLY).total
    total_unlimited = absolute_revenue(unlimited.revenue_rates(point), Scenario.REGULAR_ONLY).total
    table = Table(
        headers=["uncle window", "total absolute revenue (alpha=0.45, Ku=7/8)"],
        title="Uncle-reward window ablation (Fig. 9 peak)",
    )
    table.add_row("protocol window (6)", total_windowed)
    table.add_row("unlimited distance", total_unlimited)
    return table.render(), total_windowed, total_unlimited


def test_uncle_window_ablation(benchmark):
    report, windowed, unlimited = benchmark.pedantic(_window_ablation, rounds=1, iterations=1)
    emit_report("Ablation: uncle-reward inclusion window", report)
    assert unlimited == pytest.approx(1.35, abs=0.04)  # the paper's reading
    assert windowed == pytest.approx(1.27, abs=0.04)  # the protocol-accurate reading
    assert unlimited > windowed
