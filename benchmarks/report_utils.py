"""Reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or times one of the
underlying engines).  The drivers return result objects with a ``report()`` method;
:func:`emit_report` prints them with a banner so that the benchmark log doubles as the
reproduction record quoted in EXPERIMENTS.md.
"""

from __future__ import annotations


def emit_report(title: str, text: str) -> None:
    """Print a reproduced artifact with a visible banner."""
    banner = "=" * 78
    print()
    print(banner)
    print(f"== {title}")
    print(banner)
    print(text)
    print(banner)
