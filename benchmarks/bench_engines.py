"""Micro-benchmarks of the underlying engines.

These do not correspond to a specific paper artifact; they track the cost of the
building blocks every experiment rests on — the stationary solve, one analytical
revenue evaluation, a threshold search, and the two simulator backends — so that
performance regressions show up alongside the reproduction benchmarks.
"""

from __future__ import annotations

import pytest

from repro.analysis.absolute import Scenario
from repro.analysis.revenue import RevenueModel
from repro.analysis.threshold import profitable_threshold
from repro.markov.stationary import stationary_distribution
from repro.markov.transitions import build_selfish_mining_chain
from repro.params import MiningParams
from repro.rewards.schedule import EthereumByzantiumSchedule, FlatUncleSchedule
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import ChainSimulator
from repro.simulation.fast import MarkovMonteCarlo

PARAMS = MiningParams(alpha=0.35, gamma=0.5)


def test_stationary_solve_benchmark(benchmark):
    chain = build_selfish_mining_chain(PARAMS, max_lead=60)
    result = benchmark(stationary_distribution, chain)
    assert result.total_probability() == pytest.approx(1.0)


def test_revenue_evaluation_benchmark(benchmark):
    model = RevenueModel(EthereumByzantiumSchedule(), max_lead=60)
    rates = benchmark(model.revenue_rates, PARAMS)
    assert rates.block_rate == pytest.approx(1.0)


def test_threshold_search_benchmark(benchmark):
    model = RevenueModel(FlatUncleSchedule(0.5), max_lead=30)
    result = benchmark.pedantic(
        profitable_threshold,
        args=(0.5,),
        kwargs={"scenario": Scenario.REGULAR_ONLY, "model": model},
        rounds=1,
        iterations=1,
    )
    assert result.alpha_star == pytest.approx(0.163, abs=0.005)


def test_uncle_candidate_lookup_benchmark(benchmark):
    """Track the uncle-selection hot path: candidate lookup over a finished tree.

    The incremental fork-children index makes this proportional to the number of
    forked blocks in the window instead of every block mined in it (the seed
    behaviour, still available as ``blocks_in_height_range``).
    """
    config = SimulationConfig(
        params=PARAMS, schedule=EthereumByzantiumSchedule(), num_blocks=10_000, seed=1
    )
    simulator = ChainSimulator(config)
    simulator.run()
    tree = simulator.tree
    top = tree.max_height()

    def scan_all_windows():
        total = 0
        for height in range(1, top + 1):
            total += len(tree.uncle_candidates(height - 6, height - 1, published_only=True))
        return total

    total = benchmark(scan_all_windows)
    assert total > 0


def test_chain_simulator_benchmark(benchmark):
    config = SimulationConfig(
        params=PARAMS, schedule=EthereumByzantiumSchedule(), num_blocks=20_000, seed=1
    )
    result = benchmark.pedantic(lambda: ChainSimulator(config).run(), rounds=1, iterations=1)
    assert result.total_blocks == 20_000


def test_markov_monte_carlo_benchmark(benchmark):
    config = SimulationConfig(
        params=PARAMS, schedule=EthereumByzantiumSchedule(), num_blocks=100_000, seed=1
    )
    result = benchmark.pedantic(lambda: MarkovMonteCarlo(config).run(), rounds=1, iterations=1)
    assert result.total_blocks == 100_000
