"""Micro-benchmarks of the underlying engines.

These do not correspond to a specific paper artifact; they track the cost of the
building blocks every experiment rests on — the stationary solve, one analytical
revenue evaluation, a threshold search, and the two simulator backends — so that
performance regressions show up alongside the reproduction benchmarks.

Benchmarked sizes honour the ``REPRO_BENCH_SCALE`` environment variable (a float
multiplier applied to the block counts, default 1.0) so that CI can run the same
suite as a quick smoke at a fraction of paper scale; ``benchmarks/run_benchmarks.py``
sets it for its ``--smoke`` mode.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.absolute import Scenario
from repro.analysis.revenue import RevenueModel
from repro.analysis.threshold import profitable_threshold
from repro.markov.stationary import stationary_distribution
from repro.markov.transitions import build_selfish_mining_chain
from repro.params import MiningParams
from repro.rewards.schedule import EthereumByzantiumSchedule, FlatUncleSchedule
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import ChainSimulator
from repro.simulation.fast import MarkovMonteCarlo

PARAMS = MiningParams(alpha=0.35, gamma=0.5)

#: Scale multiplier for the simulator block counts (CI smoke runs use < 1).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(blocks: int) -> int:
    """``blocks`` scaled by ``REPRO_BENCH_SCALE`` (at least 1000)."""
    return max(1000, int(blocks * BENCH_SCALE))


@pytest.mark.parametrize("max_lead", [60, 200])
def test_stationary_solve_benchmark(benchmark, max_lead):
    chain = build_selfish_mining_chain(PARAMS, max_lead=max_lead)
    if max_lead >= 200:
        result = benchmark.pedantic(stationary_distribution, args=(chain,), rounds=1, iterations=1)
    else:
        result = benchmark(stationary_distribution, chain)
    assert result.total_probability() == pytest.approx(1.0)


def test_revenue_evaluation_benchmark(benchmark):
    model = RevenueModel(EthereumByzantiumSchedule(), max_lead=60)
    rates = benchmark(model.revenue_rates, PARAMS)
    assert rates.block_rate == pytest.approx(1.0)


def test_threshold_search_benchmark(benchmark):
    model = RevenueModel(FlatUncleSchedule(0.5), max_lead=30)
    result = benchmark.pedantic(
        profitable_threshold,
        args=(0.5,),
        kwargs={"scenario": Scenario.REGULAR_ONLY, "model": model},
        rounds=1,
        iterations=1,
    )
    assert result.alpha_star == pytest.approx(0.163, abs=0.005)


def test_uncle_candidate_lookup_benchmark(benchmark):
    """Track the uncle-selection hot path: candidate lookup over a finished tree.

    The incremental fork-children index makes this proportional to the number of
    forked blocks in the window instead of every block mined in it (the seed
    behaviour, still available as ``blocks_in_height_range``).
    """
    config = SimulationConfig(
        params=PARAMS, schedule=EthereumByzantiumSchedule(), num_blocks=scaled(10_000), seed=1
    )
    simulator = ChainSimulator(config)
    simulator.run()
    tree = simulator.tree
    top = tree.max_height()

    def scan_all_windows():
        total = 0
        for height in range(1, top + 1):
            total += len(tree.uncle_candidates(height - 6, height - 1, published_only=True))
        return total

    total = benchmark(scan_all_windows)
    assert total > 0


def test_chain_simulator_benchmark(benchmark):
    blocks = scaled(20_000)
    benchmark.extra_info["blocks"] = blocks
    config = SimulationConfig(
        params=PARAMS, schedule=EthereumByzantiumSchedule(), num_blocks=blocks, seed=1
    )
    result = benchmark.pedantic(lambda: ChainSimulator(config).run(), rounds=1, iterations=1)
    assert result.total_blocks == blocks


def test_chain_simulator_object_tree_benchmark(benchmark):
    """The same chain workload forced onto the legacy object tree.

    The ``--check`` control for the PR 10 array-backed chain core: comparing
    the default backend against this replica in the same run stays meaningful
    at any ``REPRO_BENCH_SCALE`` and under CI-runner noise, where comparisons
    against absolute recorded baselines do not.
    """
    blocks = scaled(20_000)
    benchmark.extra_info["blocks"] = blocks
    config = SimulationConfig(
        params=PARAMS, schedule=EthereumByzantiumSchedule(), num_blocks=blocks, seed=1
    )

    def run_on_object_tree():
        saved = os.environ.get("REPRO_OBJECT_TREE")
        os.environ["REPRO_OBJECT_TREE"] = "1"
        try:
            return ChainSimulator(config).run()
        finally:
            if saved is None:
                os.environ.pop("REPRO_OBJECT_TREE", None)
            else:
                os.environ["REPRO_OBJECT_TREE"] = saved

    result = benchmark.pedantic(run_on_object_tree, rounds=1, iterations=1)
    assert result.total_blocks == blocks


def test_markov_monte_carlo_benchmark(benchmark):
    """The compiled-table Markov backend (the default ``accumulate="table"``)."""
    blocks = scaled(100_000)
    benchmark.extra_info["blocks"] = blocks
    config = SimulationConfig(
        params=PARAMS, schedule=EthereumByzantiumSchedule(), num_blocks=blocks, seed=1
    )
    result = benchmark.pedantic(lambda: MarkovMonteCarlo(config).run(), rounds=1, iterations=1)
    assert result.total_blocks == blocks


def test_markov_monte_carlo_scalar_benchmark(benchmark):
    """The per-event scalar accumulator, kept as a cross-check baseline.

    ``run_benchmarks.py --check`` asserts the table walk beats this path, so the
    two benchmarks must simulate the same number of blocks.
    """
    blocks = scaled(100_000)
    benchmark.extra_info["blocks"] = blocks
    config = SimulationConfig(
        params=PARAMS, schedule=EthereumByzantiumSchedule(), num_blocks=blocks, seed=1
    )
    result = benchmark.pedantic(
        lambda: MarkovMonteCarlo(config, accumulate="scalar").run(), rounds=1, iterations=1
    )
    assert result.total_blocks == blocks
