#!/usr/bin/env python
"""Run the engine benchmark suite and write a machine-readable timing record.

The driver invokes the pytest-benchmark suite (engines, network, MDP solver,
sweep-engine, resilient-dispatcher and store files by default), extracts
per-benchmark timings, derives blocks-per-second figures for the simulator
benchmarks and entries-per-second figures for the store benchmarks, and
writes everything to ``BENCH_PR10.json`` at the repository root so the
performance trajectory is tracked in-repo (``BENCH_PR2.json``,
``BENCH_PR5.json``, ``BENCH_PR6.json``, ``BENCH_PR7.json`` and
``BENCH_PR9.json`` hold the earlier-era records; ``--history`` renders the
whole trajectory as one table).

The record pairs the resilient-dispatcher benchmarks with their pre-PR 7
replicas (a bare ``ProcessPoolExecutor.map`` and a plain serial loop) into
``overhead_vs_pool_map`` / ``overhead_vs_serial_loop`` ratios — the
wall-clock tax of the fault-tolerance machinery on a healthy workload.  The
PR 9 store benchmarks measure the pack-compaction tier: the same warm batched
read over loose JSON entries vs compacted sqlite packs.

Every record is stamped with its provenance — the git commit it measured, the
interpreter and machine it ran on, and the contents of the four component
registries (simulator backends, mining strategies, latency models, schedule
specs) — so a historical JSON answers "what exactly was benchmarked" without
archaeology.

Usage::

    python benchmarks/run_benchmarks.py                  # full default suite
    python benchmarks/run_benchmarks.py --smoke --check  # CI: tiny sizes + assert
    python benchmarks/run_benchmarks.py --select benchmarks  # every bench file
    python benchmarks/run_benchmarks.py --history        # table across eras

``--smoke`` shrinks the simulated block counts (via ``REPRO_BENCH_SCALE``) and runs
single rounds so the whole suite finishes in seconds.  ``--check`` asserts that the
compiled-table Markov backend beats the scalar accumulate path (the PR 2
vectorisation), that the network simulator's zero-latency fast path beats the
general event loop on the same workload (the PR 6 batched event core), that the
resilient dispatcher stays near a bare pool.map (PR 7), that the pack-file
read path beats the loose-entry path by at least 3x (the PR 9 compaction tier),
that the array-backed chain core beats the legacy object tree on the same
workload, and — at full scale only — that the simulator benchmarks beat the
recorded PR 9 era (the PR 10 flat chain core).

Records made from a dirty working tree are marked as such and loudly warned
about; ``--require-clean`` (used by CI for published artifacts) refuses to
write one at all.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shlex
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR10.json"
#: Default pytest selection: the engine suite plus the network-backend, MDP
#: solver, sweep-engine, resilient-dispatcher and store suites
#: (whitespace-separated; each token is passed to pytest as its own argument).
DEFAULT_SELECT = (
    "benchmarks/bench_engines.py benchmarks/bench_network.py benchmarks/bench_mdp.py "
    "benchmarks/bench_sweep.py benchmarks/bench_resilient.py benchmarks/bench_store.py"
)

#: Full-scale timings measured immediately before the PR 2 optimisations landed
#: (same machine as the committed BENCH_PR2.json), so the recorded JSON carries
#: the speedup next to the absolute numbers.  Only meaningful at scale 1.0.
PRE_PR2_BASELINES_S = {
    "test_markov_monte_carlo_benchmark": 0.812,
    "test_chain_simulator_benchmark": 0.534,
    "test_stationary_solve_benchmark[60]": 0.101,
    "test_stationary_solve_benchmark[200]": 45.9,
}

#: Full-scale timings from the committed ``BENCH_PR5.json`` (the record made
#: immediately before the PR 6 batched event core landed), so the network
#: benchmarks carry their speedup over the previous event core next to the
#: absolute numbers.  The zero-latency and miner-scaling benchmarks are new in
#: PR 6; the 9-miner workloads compare against the single-pool baseline, which
#: was the closest pre-existing measurement of the same topology.  Only
#: meaningful at scale 1.0.
PR5_BASELINES_S = {
    "test_network_single_pool_benchmark": 0.764,
    "test_network_two_pool_benchmark": 0.7725,
    "test_network_miner_scaling_benchmark[9]": 0.764,
    "test_network_zero_latency_fast_path_benchmark": 0.764,
    "test_network_zero_latency_event_loop_benchmark": 0.764,
    "test_chain_simulator_benchmark": 0.4357,
    "test_markov_monte_carlo_benchmark": 0.0192,
}

#: Full-scale timings from the committed ``BENCH_PR6.json`` (the record made
#: immediately before the PR 7 resilient dispatcher landed), so the sweep and
#: simulator benchmarks carry their position relative to the previous era next
#: to the absolute numbers.  The sweep benchmarks are the ones the dispatcher
#: rewrite actually touches; the two engine benchmarks are carried as control
#: measurements (the engines themselves did not change in PR 7).  Only
#: meaningful at scale 1.0.
PR6_BASELINES_S = {
    "test_sweep_cold_cache_benchmark": 0.1353,
    "test_sweep_warm_cache_benchmark": 0.0039,
    "test_markov_monte_carlo_benchmark": 0.0220,
    "test_chain_simulator_benchmark": 0.3547,
}

#: Pairs of (measured benchmark, its no-machinery replica) whose mean ratio is
#: recorded as a named overhead field on the *measured* record.  This is the
#: PR 7 "dispatcher overhead vs old pool.map" number.
#: Full-scale timings from the committed ``BENCH_PR7.json`` (the record made
#: immediately before the PR 9 store-compaction tier landed), so the store and
#: sweep benchmarks carry their position relative to the previous era next to
#: the absolute numbers.  The warm-sweep benchmark is the one the batched pack
#: read path actually touches; the engine benchmarks are carried as control
#: measurements.  Only meaningful at scale 1.0.
PR7_BASELINES_S = {
    "test_sweep_cold_cache_benchmark": 0.1214,
    "test_sweep_warm_cache_benchmark": 0.0042,
    "test_markov_monte_carlo_benchmark": 0.0229,
    "test_chain_simulator_benchmark": 0.4064,
    "test_resilient_pool_dispatch_benchmark": 0.1157,
    "test_resilient_serial_dispatch_benchmark": 0.0456,
}

#: Full-scale timings from the committed ``BENCH_PR9.json`` (the record made
#: immediately before the PR 10 flat array-backed chain core landed), so the
#: simulator benchmarks carry their speedup over the object-tree era next to
#: the absolute numbers.  These are the benchmarks whose hot paths sit on the
#: block tree; the Markov walk is carried as a control measurement (PR 10 did
#: not touch it).  Only meaningful at scale 1.0.
PR9_BASELINES_S = {
    "test_chain_simulator_benchmark": 0.3314,
    "test_network_single_pool_benchmark": 0.4933,
    "test_network_two_pool_benchmark": 0.4364,
    "test_network_miner_scaling_benchmark[3]": 0.2997,
    "test_network_miner_scaling_benchmark[9]": 0.5764,
    "test_network_miner_scaling_benchmark[27]": 0.9888,
    "test_network_zero_latency_fast_path_benchmark": 0.2959,
    "test_network_zero_latency_event_loop_benchmark": 0.5453,
    "test_markov_monte_carlo_benchmark": 0.0208,
}

#: The ``--check`` floor for the PR 10 chain core at full scale: each entry is
#: the minimum speedup over ``PR9_BASELINES_S`` the current tree must sustain.
#: The floors are deliberately below the recorded speedups — single-round
#: benchmarks on shared machines jitter by 2x and more, and the point of the
#: gate is catching a reverted optimisation, not pinning scheduler noise.
PR9_CHECK_FLOORS = {
    "test_chain_simulator_benchmark": 1.25,
    "test_network_zero_latency_fast_path_benchmark": 1.25,
    "test_network_single_pool_benchmark": 1.0,
    "test_network_two_pool_benchmark": 1.0,
    "test_network_miner_scaling_benchmark[9]": 1.0,
    "test_network_zero_latency_event_loop_benchmark": 1.0,
}

OVERHEAD_PAIRS = (
    (
        "test_resilient_pool_dispatch_benchmark",
        "test_legacy_pool_map_benchmark",
        "overhead_vs_pool_map",
    ),
    (
        "test_resilient_serial_dispatch_benchmark",
        "test_serial_loop_baseline_benchmark",
        "overhead_vs_serial_loop",
    ),
)

SMOKE_SCALE = 0.05


def git_revision() -> dict:
    """The measured commit: SHA plus a dirty-tree marker (``unknown`` outside git)."""

    def capture(*arguments: str) -> str | None:
        try:
            completed = subprocess.run(
                ["git", *arguments],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if completed.returncode != 0:
            return None
        return completed.stdout.strip()

    sha = capture("rev-parse", "HEAD")
    status = capture("status", "--porcelain")
    return {
        "sha": sha if sha else "unknown",
        "dirty": bool(status) if status is not None else None,
    }


def registry_contents() -> dict:
    """What was registered when the benchmarks ran (backends, strategies, ...)."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.backends import available_backends
    from repro.network.latency import available_latency_models
    from repro.rewards.schedule import available_schedule_specs
    from repro.strategies import available_strategies

    return {
        "backends": list(available_backends()),
        "strategies": list(available_strategies()),
        "latency_models": list(available_latency_models()),
        "schedule_specs": list(available_schedule_specs()),
    }


def machine_info() -> dict:
    """The hardware/interpreter the numbers were measured on."""
    uname = platform.uname()
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": uname.machine,
        "processor": uname.processor,
        "system": uname.system,
        "release": uname.release,
        "cpu_count": os.cpu_count(),
    }


def run_suite(select: str, scale: float) -> dict:
    """Run the selected benchmarks, returning pytest-benchmark's JSON payload."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    env["REPRO_BENCH_SCALE"] = repr(scale)
    with tempfile.TemporaryDirectory() as tmp:
        payload_path = Path(tmp) / "benchmark.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            *shlex.split(select),
            "-q",
            "--benchmark-json",
            str(payload_path),
        ]
        completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if completed.returncode != 0:
            raise SystemExit(f"benchmark run failed with exit code {completed.returncode}")
        return json.loads(payload_path.read_text())


def summarise(payload: dict, scale: float) -> list[dict]:
    """Flatten pytest-benchmark's payload into one record per benchmark."""
    records = []
    for bench in payload.get("benchmarks", []):
        stats = bench["stats"]
        record = {
            "name": bench["name"],
            "group": bench.get("group"),
            "mean_s": stats["mean"],
            "min_s": stats["min"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
        # Simulator benchmarks report their actual (scaled) block count through
        # pytest-benchmark's extra_info, so this driver never re-derives sizes.
        blocks = bench.get("extra_info", {}).get("blocks")
        if blocks is not None:
            record["blocks"] = blocks
            record["blocks_per_sec"] = blocks / stats["mean"]
        # Store benchmarks report their entry count the same way; entries/s is
        # the store tier's throughput figure.
        entries = bench.get("extra_info", {}).get("entries")
        if entries is not None:
            record["entries"] = entries
            record["entries_per_sec"] = entries / stats["mean"]
        if scale == 1.0:
            baseline = PRE_PR2_BASELINES_S.get(bench["name"])
            if baseline is not None:
                record["pre_pr2_baseline_s"] = baseline
                record["speedup_vs_pre_pr2"] = baseline / stats["mean"]
            pr5_baseline = PR5_BASELINES_S.get(bench["name"])
            if pr5_baseline is not None:
                record["pr5_baseline_s"] = pr5_baseline
                record["speedup_vs_pr5"] = pr5_baseline / stats["mean"]
            pr6_baseline = PR6_BASELINES_S.get(bench["name"])
            if pr6_baseline is not None:
                record["pr6_baseline_s"] = pr6_baseline
                record["speedup_vs_pr6"] = pr6_baseline / stats["mean"]
            pr7_baseline = PR7_BASELINES_S.get(bench["name"])
            if pr7_baseline is not None:
                record["pr7_baseline_s"] = pr7_baseline
                record["speedup_vs_pr7"] = pr7_baseline / stats["mean"]
            pr9_baseline = PR9_BASELINES_S.get(bench["name"])
            if pr9_baseline is not None:
                record["pr9_baseline_s"] = pr9_baseline
                record["speedup_vs_pr9"] = pr9_baseline / stats["mean"]
        records.append(record)
    attach_overhead_ratios(records)
    return records


def attach_overhead_ratios(records: list[dict]) -> None:
    """Pair dispatcher benchmarks with their replicas into overhead ratios."""
    by_name = {record["name"]: record for record in records}
    for measured_name, replica_name, field in OVERHEAD_PAIRS:
        measured = by_name.get(measured_name)
        replica = by_name.get(replica_name)
        if measured is None or replica is None:
            continue
        measured["replica_s"] = replica["mean_s"]
        measured[field] = measured["mean_s"] / replica["mean_s"]


def check_vectorised_beats_scalar(records: list[dict]) -> None:
    """Assert the compiled-table Markov walk is faster than the scalar path."""
    by_name = {record["name"]: record for record in records}
    table = by_name.get("test_markov_monte_carlo_benchmark")
    scalar = by_name.get("test_markov_monte_carlo_scalar_benchmark")
    if table is None or scalar is None:
        raise SystemExit("--check needs both Markov Monte Carlo benchmarks in the selection")
    if table["mean_s"] >= scalar["mean_s"]:
        raise SystemExit(
            "vectorised Markov backend did not beat the scalar accumulate path: "
            f"table {table['mean_s']:.4f}s vs scalar {scalar['mean_s']:.4f}s"
        )
    print(
        f"check OK: table walk {table['mean_s']:.4f}s beats scalar "
        f"{scalar['mean_s']:.4f}s ({scalar['mean_s'] / table['mean_s']:.1f}x)"
    )


def check_fast_path_beats_event_loop(records: list[dict]) -> None:
    """Assert the zero-latency fast path beats the general loop on its workload."""
    by_name = {record["name"]: record for record in records}
    fast = by_name.get("test_network_zero_latency_fast_path_benchmark")
    general = by_name.get("test_network_zero_latency_event_loop_benchmark")
    if fast is None or general is None:
        raise SystemExit("--check needs both zero-latency network benchmarks in the selection")
    if fast["mean_s"] >= general["mean_s"]:
        raise SystemExit(
            "zero-latency fast path did not beat the general event loop: "
            f"fast {fast['mean_s']:.4f}s vs general {general['mean_s']:.4f}s"
        )
    print(
        f"check OK: zero-latency fast path {fast['mean_s']:.4f}s beats the "
        f"general loop {general['mean_s']:.4f}s "
        f"({general['mean_s'] / fast['mean_s']:.1f}x)"
    )


def check_dispatcher_overhead(records: list[dict]) -> None:
    """Assert the resilient dispatcher's pool path stays near the bare pool.

    The bound is deliberately loose (3x): the point is to catch an accidental
    serialisation of the pool path or a per-task sleep creeping in, not to
    pin scheduler jitter on shared CI runners.
    """
    by_name = {record["name"]: record for record in records}
    measured = by_name.get("test_resilient_pool_dispatch_benchmark")
    if measured is None or "overhead_vs_pool_map" not in measured:
        raise SystemExit(
            "--check needs the resilient-dispatcher and legacy pool.map benchmarks"
        )
    ratio = measured["overhead_vs_pool_map"]
    if ratio >= 3.0:
        raise SystemExit(
            "resilient dispatcher costs too much over a bare pool.map: "
            f"{measured['mean_s']:.4f}s vs {measured['replica_s']:.4f}s ({ratio:.2f}x)"
        )
    print(
        f"check OK: resilient pool dispatch {measured['mean_s']:.4f}s vs bare "
        f"pool.map {measured['replica_s']:.4f}s ({ratio:.2f}x overhead)"
    )


def check_pack_reads_beat_loose(records: list[dict]) -> None:
    """Assert the pack-file read path beats the loose-entry path by >= 3x.

    The acceptance bar of the PR 9 compaction tier: the same warm batched
    ``get_many`` over compacted packs must run at least 3x the loose-entry
    throughput (one SELECT per shard vs one file open per key).
    """
    by_name = {record["name"]: record for record in records}
    loose = by_name.get("test_store_loose_read_benchmark")
    pack = by_name.get("test_store_pack_read_benchmark")
    if loose is None or pack is None:
        raise SystemExit("--check needs both store read benchmarks in the selection")
    ratio = loose["mean_s"] / pack["mean_s"]
    if ratio < 3.0:
        raise SystemExit(
            "pack-file reads did not beat loose-entry reads by 3x: "
            f"pack {pack['mean_s']:.4f}s vs loose {loose['mean_s']:.4f}s ({ratio:.2f}x)"
        )
    print(
        f"check OK: pack reads {pack['mean_s']:.4f}s beat loose reads "
        f"{loose['mean_s']:.4f}s ({ratio:.1f}x, "
        f"{pack.get('entries_per_sec', 0):,.0f} entries/s warm)"
    )


def check_array_tree_beats_object_tree(records: list[dict]) -> None:
    """Assert the array-backed chain core beats the legacy object tree.

    The PR 10 acceptance gate in its noise-robust form: both backends run the
    identical workload in the same invocation on the same machine, so the
    comparison holds at any ``REPRO_BENCH_SCALE`` where comparisons against
    absolute recorded baselines do not.
    """
    by_name = {record["name"]: record for record in records}
    array = by_name.get("test_chain_simulator_benchmark")
    objects = by_name.get("test_chain_simulator_object_tree_benchmark")
    if array is None or objects is None:
        raise SystemExit("--check needs both chain simulator benchmarks in the selection")
    if array["mean_s"] >= objects["mean_s"]:
        raise SystemExit(
            "array-backed chain core did not beat the object tree: "
            f"array {array['mean_s']:.4f}s vs object {objects['mean_s']:.4f}s"
        )
    print(
        f"check OK: array chain core {array['mean_s']:.4f}s beats the object "
        f"tree {objects['mean_s']:.4f}s ({objects['mean_s'] / array['mean_s']:.1f}x)"
    )


def check_simulators_beat_pr9(records: list[dict], scale: float) -> None:
    """Assert the simulator benchmarks beat the recorded PR 9 era (full scale).

    Compares against the committed ``BENCH_PR9.json`` timings with the floors
    of ``PR9_CHECK_FLOORS``; recorded baselines are only comparable at scale
    1.0, so smoke runs skip this gate (they run the same-machine object-tree
    comparison instead).
    """
    if scale != 1.0:
        print("check skipped: PR 9 baselines only apply at full scale")
        return
    by_name = {record["name"]: record for record in records}
    failures = []
    summaries = []
    for name, floor in PR9_CHECK_FLOORS.items():
        record = by_name.get(name)
        if record is None:
            raise SystemExit(f"--check needs {name} in the selection")
        speedup = PR9_BASELINES_S[name] / record["mean_s"]
        summaries.append(f"{name} {speedup:.2f}x (floor {floor:.2f}x)")
        if speedup < floor:
            failures.append(
                f"{name}: {record['mean_s']:.4f}s is only {speedup:.2f}x the "
                f"PR 9 baseline {PR9_BASELINES_S[name]:.4f}s (floor {floor:.2f}x)"
            )
    if failures:
        raise SystemExit("simulators regressed against the PR 9 era:\n  " + "\n  ".join(failures))
    print("check OK: simulators beat the PR 9 era: " + ", ".join(summaries))


def load_history() -> list[tuple[int, dict]]:
    """The committed ``BENCH_PR*.json`` records, oldest era first."""
    eras = []
    for path in REPO_ROOT.glob("BENCH_PR*.json"):
        try:
            number = int(path.stem.removeprefix("BENCH_PR"))
        except ValueError:
            continue
        try:
            eras.append((number, json.loads(path.read_text())))
        except (OSError, json.JSONDecodeError) as error:
            print(f"skipping unreadable {path.name}: {error}", file=sys.stderr)
    eras.sort(key=lambda era: era[0])
    return eras


def print_history() -> None:
    """Render every committed benchmark record as one benchmark-by-era table."""
    eras = load_history()
    if not eras:
        raise SystemExit("no BENCH_PR*.json records found at the repository root")
    columns = [f"PR{number}" for number, _ in eras]
    # Row order: first era each benchmark appeared in, then name.
    rows: dict[str, dict[str, dict]] = {}
    for (number, document), column in zip(eras, columns):
        for record in document.get("benchmarks", []):
            rows.setdefault(record["name"], {})[column] = record

    def cell(record: dict | None) -> str:
        if record is None:
            return "-"
        if "blocks_per_sec" in record:
            return f"{record['blocks_per_sec']:,.0f} b/s"
        if "entries_per_sec" in record:
            return f"{record['entries_per_sec']:,.0f} e/s"
        return f"{record['mean_s'] * 1e3:.1f} ms"

    table = [["benchmark", *columns]]
    for name, by_column in rows.items():
        table.append([name, *[cell(by_column.get(column)) for column in columns]])
    widths = [max(len(row[i]) for row in table) for i in range(len(table[0]))]
    for index, row in enumerate(table):
        line = "  ".join(
            field.ljust(widths[i]) if i == 0 else field.rjust(widths[i])
            for i, field in enumerate(row)
        )
        print(line)
        if index == 0:
            print("  ".join("-" * width for width in widths))
    for (_, document), column in zip(eras, columns):
        git = document.get("git", {})
        sha = (git.get("sha") or "unknown")[:12]
        dirty = " (dirty tree)" if git.get("dirty") else ""
        scale = document.get("scale", "?")
        print(f"{column}: {sha}{dirty}, scale {scale}, {document.get('created_at', '?')}")


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT, help="JSON output path")
    parser.add_argument(
        "--select", default=DEFAULT_SELECT, help="pytest selection to run (file or directory)"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes (REPRO_BENCH_SCALE=%s)" % SMOKE_SCALE
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "assert the compiled-table Markov backend beats the scalar path, "
            "the zero-latency fast path beats the general event loop, the "
            "resilient dispatcher stays near a bare pool.map, pack-file "
            "reads beat loose-entry reads by 3x, the array chain core beats "
            "the object tree, and (at full scale) the simulators beat the "
            "recorded PR 9 era"
        ),
    )
    parser.add_argument(
        "--require-clean",
        action="store_true",
        help="refuse to run (and to write an artifact) from a dirty working tree",
    )
    parser.add_argument(
        "--history",
        action="store_true",
        help="print a benchmark-by-era table of the committed BENCH_PR*.json records and exit",
    )
    args = parser.parse_args(argv)

    if args.history:
        print_history()
        return

    revision = git_revision()
    if revision["dirty"]:
        if args.require_clean:
            raise SystemExit(
                "refusing to benchmark a dirty working tree (--require-clean): "
                "commit or stash your changes so the record's git SHA means something"
            )
        print(
            "WARNING: benchmarking a DIRTY working tree — the record's git SHA "
            "does not describe the measured code and will be marked dirty",
            file=sys.stderr,
        )

    scale = SMOKE_SCALE if args.smoke else 1.0
    payload = run_suite(args.select, scale)
    records = summarise(payload, scale)
    document = {
        "schema": 2,
        "created_by": "benchmarks/run_benchmarks.py",
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git": revision,
        "machine_info": machine_info(),
        "registries": registry_contents(),
        # Kept for schema-1 consumers.
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scale": scale,
        "smoke": args.smoke,
        "benchmarks": records,
    }
    args.output.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    print(f"wrote {args.output} ({len(records)} benchmarks)")
    for record in records:
        if "blocks_per_sec" in record:
            rate = f" ({record['blocks_per_sec']:,.0f} blocks/s)"
        elif "entries_per_sec" in record:
            rate = f" ({record['entries_per_sec']:,.0f} entries/s)"
        else:
            rate = ""
        print(f"  {record['name']}: {record['mean_s'] * 1e3:.2f} ms{rate}")
    if args.check:
        check_vectorised_beats_scalar(records)
        check_fast_path_beats_event_loop(records)
        check_dispatcher_overhead(records)
        check_pack_reads_beat_loose(records)
        check_array_tree_beats_object_tree(records)
        check_simulators_beat_pr9(records, scale)


if __name__ == "__main__":
    main()
