"""Benchmark + reproduction of Figure 9 (impact of the uncle-reward size).

Regenerates the pool / honest / total revenue curves for the four uncle-reward
functions the paper sweeps, and pins the figure's qualitative claims: revenue grows
with the uncle reward, the total payout inflates to roughly 135% at ``Ku = 7/8`` and
``alpha = 0.45``, and Ethereum's distance-based ``Ku(.)`` pays the attacker like the
flat ``7/8`` rule does.
"""

from __future__ import annotations

from report_utils import emit_report

from repro.experiments.figure9 import run_figure9


def test_figure9_reproduction(benchmark):
    result = benchmark.pedantic(run_figure9, kwargs={"max_lead": 60}, rounds=1, iterations=1)
    emit_report("Figure 9: revenue under different uncle rewards (gamma=0.5)", result.report())

    final = len(result.alphas) - 1
    small = result.sweeps["Ku=2/8"].points[final]
    medium = result.sweeps["Ku=4/8"].points[final]
    large = result.sweeps["Ku=7/8"].points[final]
    ethereum = result.sweeps["Ku(.)"].points[final]

    # Larger uncle rewards mean more revenue for everyone.
    assert small.pool_absolute < medium.pool_absolute < large.pool_absolute
    assert small.honest_absolute < medium.honest_absolute < large.honest_absolute

    # Total revenue soars to ~135% of the no-attack payout at Ku = 7/8, alpha = 0.45.
    assert abs(result.peak_total_revenue("Ku=7/8") - 1.35) < 0.05

    # The pool's uncles always sit at distance 1, so Ku(.) behaves like 7/8 for it.
    assert abs(ethereum.pool_absolute - large.pool_absolute) < 0.02

    # For honest miners Ku(.) sits between the flat 4/8 and 7/8 rules at large alpha.
    assert medium.honest_absolute - 0.02 <= ethereum.honest_absolute <= large.honest_absolute + 0.02
