"""Benchmark + reproduction of the descriptive artifacts: Table I and Figure 6.

These are cheap but kept in the harness so that ``pytest benchmarks/ --benchmark-only``
regenerates every table and figure of the paper in one command.
"""

from __future__ import annotations

import pytest
from report_utils import emit_report

from repro.experiments.pools import pool_concentration_report, top_k_share
from repro.experiments.table1 import run_table1


def test_table1_reproduction(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    emit_report("Table I: mining rewards in Ethereum and Bitcoin", result.report())
    by_type = {row.reward_type: row for row in result.rows}
    assert by_type["Uncle reward"].in_ethereum and not by_type["Uncle reward"].in_bitcoin
    assert by_type["Nephew reward"].in_ethereum and not by_type["Nephew reward"].in_bitcoin
    assert by_type["Static reward"].in_ethereum and by_type["Static reward"].in_bitcoin


def test_figure6_reproduction(benchmark):
    report = benchmark.pedantic(pool_concentration_report, rounds=1, iterations=1)
    emit_report("Figure 6: Ethereum mining-pool hash power (2018-09)", report)
    assert top_k_share(k=1) == pytest.approx(0.2634, abs=1e-4)
    assert top_k_share(k=2) == pytest.approx(0.488, abs=1e-3)
    assert top_k_share(k=5) > 0.81
