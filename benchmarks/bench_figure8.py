"""Benchmark + reproduction of Figure 8 (absolute revenue vs pool size).

Regenerates the figure's series — analytical curves plus a discrete-event simulation
overlay at every grid point — and times the end-to-end driver.  The printed table is
the artifact recorded in EXPERIMENTS.md; the assertions pin the figure's shape (the
pool's curve crosses the honest-mining line between 0.15 and 0.20, honest revenue
falls monotonically).
"""

from __future__ import annotations

from report_utils import emit_report

from repro.experiments.figure8 import run_figure8


def test_figure8_reproduction(benchmark):
    result = benchmark.pedantic(
        run_figure8,
        kwargs={
            "include_simulation": True,
            "simulation_blocks": 20_000,
            "simulation_runs": 1,
            "max_lead": 60,
        },
        rounds=1,
        iterations=1,
    )
    emit_report("Figure 8: absolute revenue vs pool size (gamma=0.5, Ku=4/8)", result.report())

    crossover = result.crossover_alpha()
    assert crossover is not None
    assert 0.15 <= crossover <= 0.20

    honest_series = result.analysis.honest_absolute
    assert honest_series == sorted(honest_series, reverse=True)

    pool_series = result.analysis.pool_absolute
    assert pool_series == sorted(pool_series)

    # The simulation overlay tracks the analysis to a couple of percent.
    simulated = result.simulation.pool_absolute_scenario1()
    for analytical_point, simulated_value in zip(result.analysis.points, simulated):
        assert abs(simulated_value - analytical_point.pool_absolute) < 0.03
