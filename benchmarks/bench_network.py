"""Micro-benchmarks of the event-driven network simulator.

The network backend pays for its fidelity (an event queue, per-miner views, one
delivery per miner per block) with wall-clock cost that scales in the number of
miners; these benchmarks track that cost for the two configurations the network
experiments lean on, so regressions in the event loop or the race bookkeeping
show up next to the engine benchmarks.

The PR-6 batched event core added two axes worth pinning separately:

* **miner-count scaling** (3 / 9 / 27 miners on the same exponential-latency
  workload) — the broadcast fan-out and per-miner view costs are where the
  backend's O(miners) terms live, so the scaling curve shows whether a change
  moved a per-block or a per-delivery cost;
* **the zero-latency fast path** — the paper-model special case runs without a
  heap; benchmarked both ways (fast path vs ``force_event_loop=True``) so the
  shortcut's advantage is a recorded, asserted number rather than folklore.

Sizes honour ``REPRO_BENCH_SCALE`` exactly like ``bench_engines.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.network import multi_pool_topology, single_pool_topology
from repro.network.simulator import NetworkSimulator
from repro.params import MiningParams
from repro.rewards.schedule import EthereumByzantiumSchedule
from repro.simulation.config import SimulationConfig

PARAMS = MiningParams(alpha=0.35, gamma=0.5)

#: Scale multiplier for the simulated block counts (CI smoke runs use < 1).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(blocks: int) -> int:
    """``blocks`` scaled by ``REPRO_BENCH_SCALE`` (at least 1000)."""
    return max(1000, int(blocks * BENCH_SCALE))


def test_network_single_pool_benchmark(benchmark):
    """Single selfish pool vs 8 honest miners, exponential latency."""
    blocks = scaled(10_000)
    benchmark.extra_info["blocks"] = blocks
    config = SimulationConfig(
        params=PARAMS,
        schedule=EthereumByzantiumSchedule(),
        num_blocks=blocks,
        seed=1,
        topology=single_pool_topology(
            PARAMS.alpha, strategy="selfish", num_honest=8, latency="exponential:0.2"
        ),
    )
    result = benchmark.pedantic(lambda: NetworkSimulator(config).run(), rounds=1, iterations=1)
    assert result.total_blocks == blocks


def test_network_two_pool_benchmark(benchmark):
    """Two selfish pools plus 6 honest miners (the multi-attacker hot path)."""
    blocks = scaled(10_000)
    benchmark.extra_info["blocks"] = blocks
    config = SimulationConfig(
        params=PARAMS,
        schedule=EthereumByzantiumSchedule(),
        num_blocks=blocks,
        seed=1,
        topology=multi_pool_topology(
            [(0.25, "selfish"), (0.2, "selfish")], num_honest=6, latency="exponential:0.1"
        ),
    )
    result = benchmark.pedantic(lambda: NetworkSimulator(config).run(), rounds=1, iterations=1)
    assert result.total_blocks == blocks


@pytest.mark.parametrize("num_miners", [3, 9, 27])
def test_network_miner_scaling_benchmark(benchmark, num_miners):
    """One pool plus ``num_miners - 1`` honest miners on the exponential workload.

    Tracks how the per-block cost grows with the miner population: deliveries
    are O(miners) per publication, so the 3 -> 9 -> 27 curve separates
    per-block costs (flat across the curve) from per-delivery ones.
    """
    blocks = scaled(10_000)
    benchmark.extra_info["blocks"] = blocks
    config = SimulationConfig(
        params=PARAMS,
        schedule=EthereumByzantiumSchedule(),
        num_blocks=blocks,
        seed=1,
        topology=single_pool_topology(
            PARAMS.alpha,
            strategy="selfish",
            num_honest=num_miners - 1,
            latency="exponential:0.2",
        ),
    )
    result = benchmark.pedantic(lambda: NetworkSimulator(config).run(), rounds=1, iterations=1)
    assert result.total_blocks == blocks


def _zero_latency_config(blocks: int) -> SimulationConfig:
    """The 9-miner single-pool paper-model workload (instantaneous broadcast)."""
    return SimulationConfig(
        params=PARAMS,
        schedule=EthereumByzantiumSchedule(),
        num_blocks=blocks,
        seed=1,
        topology=single_pool_topology(
            PARAMS.alpha, strategy="selfish", num_honest=8, latency="zero"
        ),
    )


def test_network_zero_latency_fast_path_benchmark(benchmark):
    """The 9-miner zero-latency workload on the heap-free synchronous fast path."""
    blocks = scaled(10_000)
    benchmark.extra_info["blocks"] = blocks
    config = _zero_latency_config(blocks)
    result = benchmark.pedantic(lambda: NetworkSimulator(config).run(), rounds=1, iterations=1)
    assert result.total_blocks == blocks


def test_network_zero_latency_event_loop_benchmark(benchmark):
    """The same zero-latency workload forced through the general event loop.

    Exists purely as the fast path's control: ``run_benchmarks.py --check``
    asserts the fast path beats this number.
    """
    blocks = scaled(10_000)
    benchmark.extra_info["blocks"] = blocks
    config = _zero_latency_config(blocks)
    result = benchmark.pedantic(
        lambda: NetworkSimulator(config, force_event_loop=True).run(), rounds=1, iterations=1
    )
    assert result.total_blocks == blocks
