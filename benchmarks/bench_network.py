"""Micro-benchmarks of the event-driven network simulator.

The network backend pays for its fidelity (an event queue, per-miner views, one
delivery per miner per block) with wall-clock cost that scales in the number of
miners; these benchmarks track that cost for the two configurations the network
experiments lean on, so regressions in the event loop or the race bookkeeping
show up next to the engine benchmarks.

Sizes honour ``REPRO_BENCH_SCALE`` exactly like ``bench_engines.py``.
"""

from __future__ import annotations

import os

from repro.network import multi_pool_topology, single_pool_topology
from repro.network.simulator import NetworkSimulator
from repro.params import MiningParams
from repro.rewards.schedule import EthereumByzantiumSchedule
from repro.simulation.config import SimulationConfig

PARAMS = MiningParams(alpha=0.35, gamma=0.5)

#: Scale multiplier for the simulated block counts (CI smoke runs use < 1).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(blocks: int) -> int:
    """``blocks`` scaled by ``REPRO_BENCH_SCALE`` (at least 1000)."""
    return max(1000, int(blocks * BENCH_SCALE))


def test_network_single_pool_benchmark(benchmark):
    """Single selfish pool vs 8 honest miners, exponential latency."""
    blocks = scaled(10_000)
    benchmark.extra_info["blocks"] = blocks
    config = SimulationConfig(
        params=PARAMS,
        schedule=EthereumByzantiumSchedule(),
        num_blocks=blocks,
        seed=1,
        topology=single_pool_topology(
            PARAMS.alpha, strategy="selfish", num_honest=8, latency="exponential:0.2"
        ),
    )
    result = benchmark.pedantic(lambda: NetworkSimulator(config).run(), rounds=1, iterations=1)
    assert result.total_blocks == blocks


def test_network_two_pool_benchmark(benchmark):
    """Two selfish pools plus 6 honest miners (the multi-attacker hot path)."""
    blocks = scaled(10_000)
    benchmark.extra_info["blocks"] = blocks
    config = SimulationConfig(
        params=PARAMS,
        schedule=EthereumByzantiumSchedule(),
        num_blocks=blocks,
        seed=1,
        topology=multi_pool_topology(
            [(0.25, "selfish"), (0.2, "selfish")], num_honest=6, latency="exponential:0.1"
        ),
    )
    result = benchmark.pedantic(lambda: NetworkSimulator(config).run(), rounds=1, iterations=1)
    assert result.total_blocks == blocks
